// Benchmarks regenerating the paper's tables and figures, one benchmark per
// artifact (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md
// for recorded results). `go test -bench=. -benchmem` runs them all;
// cmd/wdptbench renders the same experiments as text tables with sweeps.
package wdpt_test

import (
	"fmt"
	"testing"

	"wdpt"
	"wdpt/internal/gen"
	"wdpt/internal/harness"
)

// benchSizes drops the largest of the given sweep sizes in -short mode, so
// that a -short -benchtime=1x pass (the race-detector smoke in
// scripts/check.sh) finishes without timeouts while full runs keep the
// paper's sweeps intact.
func benchSizes(sizes ...int) []int {
	if testing.Short() && len(sizes) > 1 {
		return sizes[:len(sizes)-1]
	}
	return sizes
}

// BenchmarkTable1EvalBoundedInterface (E1): exact evaluation on a
// ℓ-TW(1) ∩ BI(1) chain tree — the Theorem 6 interface algorithm against
// the naive band enumeration, over a layered database with fan-out.
func BenchmarkTable1EvalBoundedInterface(b *testing.B) {
	for _, depth := range benchSizes(2, 4, 6) {
		d := gen.LayeredDatabase(depth+1, 40, 4, int64(depth))
		p := gen.PathWDPT(depth)
		h := wdpt.Mapping{"y0": gen.LayeredFirstVertex()}
		eng := wdpt.AutoEngine()
		b.Run(fmt.Sprintf("interface/depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.EvalInterface(d, h, eng)
			}
		})
		b.Run(fmt.Sprintf("naive/depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.Eval(d, h)
			}
		})
	}
}

// BenchmarkTable1EvalGlobalHard (E2): exact evaluation on g-TW(1) WDPTs is
// NP-hard (Proposition 3) — the 3-colorability reduction on K_n.
func BenchmarkTable1EvalGlobalHard(b *testing.B) {
	eng := wdpt.AutoEngine()
	for _, n := range benchSizes(4, 5, 6) {
		p, d, h := gen.ThreeColorInstance(gen.CompleteGraph(n))
		b.Run(fmt.Sprintf("K%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.EvalInterface(d, h, eng)
			}
		})
	}
}

// BenchmarkTable1PartialEval (E3): PARTIAL-EVAL stays polynomial on the
// same instances (Theorem 8).
func BenchmarkTable1PartialEval(b *testing.B) {
	eng := wdpt.AutoEngine()
	for _, n := range benchSizes(4, 6, 8) {
		p, d, h := gen.ThreeColorInstance(gen.CompleteGraph(n))
		b.Run(fmt.Sprintf("K%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.PartialEval(d, h, eng)
			}
		})
	}
}

// BenchmarkTable1MaxEval (E4): MAX-EVAL stays polynomial (Theorem 9).
func BenchmarkTable1MaxEval(b *testing.B) {
	eng := wdpt.AutoEngine()
	for _, n := range benchSizes(4, 6, 8) {
		p, d, h := gen.ThreeColorInstance(gen.CompleteGraph(n))
		b.Run(fmt.Sprintf("K%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.MaxEval(d, h, eng)
			}
		})
	}
}

// BenchmarkTable1Subsumption (E5): the coNP inner check of Theorem 11
// against the generic enumeration inner check.
func BenchmarkTable1Subsumption(b *testing.B) {
	for _, w := range benchSizes(2, 3) {
		p := gen.StarWDPT(w)
		b.Run(fmt.Sprintf("partialeval-inner/width=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				wdpt.Subsumes(p, p, wdpt.SubsumeOptions{})
			}
		})
		b.Run(fmt.Sprintf("enumerate-inner/width=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				wdpt.Subsumes(p, p, wdpt.SubsumeOptions{InnerEnumerate: true})
			}
		})
	}
}

// BenchmarkTable2Membership (E6): M(WB(1)) membership on symmetric cycles.
func BenchmarkTable2Membership(b *testing.B) {
	for _, m := range benchSizes(3, 4) {
		p := gen.SymmetricCycleTree(m)
		b.Run(fmt.Sprintf("C%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				wdpt.MemberWB(p, wdpt.WB(1), wdpt.ApproxOptions{})
			}
		})
	}
}

// BenchmarkTable2Approximation (E7): WB(1)-approximation construction.
func BenchmarkTable2Approximation(b *testing.B) {
	for _, l := range benchSizes(0, 1) {
		p := gen.TriangleWithPath(l)
		b.Run(fmt.Sprintf("pathlen=%d", l), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wdpt.Approximate(p, wdpt.WB(1), wdpt.ApproxOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure2Blowup (E8): constructing the Figure 2 family and
// checking class membership; the measured artifact is the 2^n size ratio,
// reported as custom metrics.
func BenchmarkFigure2Blowup(b *testing.B) {
	for _, n := range benchSizes(4, 8) {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				p1 := gen.Figure2P1(n, 2)
				p2 := gen.Figure2P2(n, 2)
				ratio = float64(p2.Size()) / float64(p1.Size())
			}
			b.ReportMetric(ratio, "size-ratio")
		})
	}
}

// BenchmarkCQEngines (E9): the CQ evaluation substrate — naive vs
// Yannakakis vs decomposition-guided on unsatisfiable deep path queries.
func BenchmarkCQEngines(b *testing.B) {
	atoms := pathAtoms(6)
	d := gen.LayeredDatabase(6, 40, 4, 1)
	engines := map[string]wdpt.Engine{
		"naive":         wdpt.NaiveEngine(),
		"yannakakis":    wdpt.YannakakisEngine(),
		"decomposition": wdpt.DecompositionEngine(),
		"hypertree":     wdpt.HypertreeEngine(2),
	}
	for name, eng := range engines {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng.Satisfiable(atoms, d, nil)
			}
		})
	}
}

func pathAtoms(l int) []wdpt.Atom {
	var atoms []wdpt.Atom
	for i := 0; i < l; i++ {
		atoms = append(atoms, wdpt.NewAtom("E",
			wdpt.V(fmt.Sprintf("x%d", i)), wdpt.V(fmt.Sprintf("x%d", i+1))))
	}
	return atoms
}

// BenchmarkApproximationPayoff (E10): running the WB(1)-approximation of a
// cyclic pattern against direct evaluation on a large acyclic database.
func BenchmarkApproximationPayoff(b *testing.B) {
	p := gen.DirectedCycleTree(4)
	ap, err := wdpt.Approximate(p, wdpt.WB(1), wdpt.ApproxOptions{})
	if err != nil {
		b.Fatal(err)
	}
	perLayer := 300
	if testing.Short() {
		perLayer = 60
	}
	d := gen.LayeredDatabase(4, perLayer, 10, 1)
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.Evaluate(d)
		}
	})
	b.Run("approximation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ap.Evaluate(d)
		}
	})
}

// BenchmarkUnionEval (E11): ⋃-EVAL scales with the number of members
// (Theorem 16).
func BenchmarkUnionEval(b *testing.B) {
	d := gen.LayeredDatabase(5, 40, 4, 3)
	h := wdpt.Mapping{"y0": gen.LayeredFirstVertex()}
	eng := wdpt.AutoEngine()
	for _, m := range benchSizes(1, 4, 8) {
		trees := make([]*wdpt.PatternTree, m)
		for i := range trees {
			trees[i] = gen.PathWDPT(i + 1)
		}
		u, err := wdpt.NewUnion(trees...)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("members=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				u.Eval(d, h, eng)
			}
		})
	}
}

// BenchmarkUWBApproximation (E11): UWB(1)-approximation through the φ_cq
// translation (Theorem 18).
func BenchmarkUWBApproximation(b *testing.B) {
	u, err := wdpt.NewUnion(gen.DirectedCycleTree(3), gen.PathWDPT(2))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := wdpt.ApproximateUnion(u, wdpt.TW(1), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHarnessQuick runs every registered experiment in quick mode so
// that a single bench invocation touches the whole harness.
func BenchmarkHarnessQuick(b *testing.B) {
	cfg := harness.Config{Quick: true, Repetitions: 1}
	for i := 0; i < b.N; i++ {
		for _, e := range harness.All() {
			e.Run(cfg)
		}
	}
}

// BenchmarkRDFEncoding (E12): triple-encoded evaluation vs relational
// evaluation of the music workload (Section 2's RDF scenario).
func BenchmarkRDFEncoding(b *testing.B) {
	p := gen.MusicWDPT("x", "y", "z", "zp")
	enc := wdpt.EncodeRDF(p)
	d := gen.MusicDatabaseLarge(40, 3, 1)
	encD := wdpt.EncodeRDFDatabase(d)
	b.Run("relational", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.Evaluate(d)
		}
	})
	b.Run("rdf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			enc.Evaluate(encD)
		}
	})
}

// BenchmarkFPTEvaluation (E13): PARTIAL-EVAL through the Corollary 2
// witness vs against the original M(WB(1)) tree.
func BenchmarkFPTEvaluation(b *testing.B) {
	p := gen.SymmetricCycleTree(4)
	opt := wdpt.Optimize(p, wdpt.WB(1), wdpt.ApproxOptions{})
	if !opt.Tractable() {
		b.Fatal("expected a tractable witness")
	}
	tuples := 400
	if testing.Short() {
		tuples = 120
	}
	d := gen.RandomDatabase(gen.DBParams{
		DomainSize:   60,
		TuplesPerRel: tuples,
		Rels:         []gen.RelSpec{{Name: "E", Arity: 2}, {Name: "V", Arity: 1}},
	}, 1)
	eng := wdpt.AutoEngine()
	b.Run("original", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.PartialEval(d, wdpt.Mapping{}, eng)
		}
	})
	b.Run("witness", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opt.PartialEval(d, wdpt.Mapping{}, eng)
		}
	})
}
