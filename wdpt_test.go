package wdpt_test

import (
	"fmt"
	"testing"

	"wdpt"
)

func musicDB() *wdpt.Database {
	d := wdpt.NewDatabase()
	d.Insert("recorded_by", "Our_love", "Caribou")
	d.Insert("published", "Our_love", "after_2010")
	d.Insert("recorded_by", "Swim", "Caribou")
	d.Insert("published", "Swim", "after_2010")
	d.Insert("rating", "Swim", "2")
	return d
}

const musicQuery = `
	(recorded_by(?x, ?y) AND published(?x, "after_2010"))
	OPT rating(?x, ?z)
	OPT formed_in(?y, ?zp)`

func TestFacadeEndToEnd(t *testing.T) {
	p, err := wdpt.ParseQuery(musicQuery)
	if err != nil {
		t.Fatal(err)
	}
	d := musicDB()
	answers := p.Evaluate(d)
	if len(answers) != 2 {
		t.Fatalf("answers = %v", answers)
	}
	eng := wdpt.AutoEngine()
	if !p.PartialEval(d, wdpt.Mapping{"y": "Caribou"}, eng) {
		t.Fatal("partial answer missing")
	}
	if !p.EvalInterface(d, wdpt.Mapping{"x": "Swim", "y": "Caribou", "z": "2"}, eng) {
		t.Fatal("exact answer missing")
	}
	cl := p.Classify()
	if cl.LocalTW != 1 || cl.GlobalTW != 1 {
		t.Fatalf("classification = %+v", cl)
	}
}

func TestFacadeConstructors(t *testing.T) {
	p := wdpt.MustNew(wdpt.NodeSpec{
		Atoms: []wdpt.Atom{wdpt.NewAtom("e", wdpt.V("a"), wdpt.V("b"))},
	}, []string{"a"})
	if p.NumNodes() != 1 {
		t.Fatal("MustNew failed")
	}
	if _, err := wdpt.New(wdpt.NodeSpec{
		Atoms: []wdpt.Atom{wdpt.NewAtom("e", wdpt.V("a"), wdpt.C("k"))},
	}, []string{"missing"}); err == nil {
		t.Fatal("invalid free variable accepted")
	}
	u, err := wdpt.NewUnion(p)
	if err != nil || len(u.Trees()) != 1 {
		t.Fatal("union constructor failed")
	}
}

func TestFacadeAnalysisAndApproximation(t *testing.T) {
	tri, err := wdpt.ParseWDPT(`ANS(?x) { e(?a,?b), e(?b,?c), e(?c,?a), v(?x) }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, member := wdpt.MemberWB(tri, wdpt.WB(1), wdpt.ApproxOptions{}); member {
		t.Fatal("triangle should not be in M(WB(1))")
	}
	ap, err := wdpt.Approximate(tri, wdpt.WB(1), wdpt.ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !wdpt.Subsumes(ap, tri, wdpt.SubsumeOptions{}) {
		t.Fatal("approximation must be subsumed")
	}
	if !wdpt.IsApproximation(ap, tri, wdpt.WB(1), wdpt.ApproxOptions{}) {
		t.Fatal("IsApproximation rejected the computed approximation")
	}
	if d, h, found := wdpt.SubsumptionCounterExample(tri, ap, wdpt.SubsumeOptions{}); !found || d == nil || h == nil {
		t.Fatal("tri ⋢ approximation should have a counterexample")
	}
}

func TestFacadeClasses(t *testing.T) {
	for _, c := range []wdpt.Class{wdpt.TW(1), wdpt.HW(1), wdpt.HWPrime(1), wdpt.WB(2), wdpt.WBPrime(1)} {
		if c.Name() == "" {
			t.Fatal("class without a name")
		}
	}
}

// ExampleParseQuery demonstrates optional matching end to end; the output
// is the paper's Example 2.
func ExampleParseQuery() {
	d := wdpt.NewDatabase()
	d.Insert("recorded_by", "Our_love", "Caribou")
	d.Insert("published", "Our_love", "after_2010")
	d.Insert("recorded_by", "Swim", "Caribou")
	d.Insert("published", "Swim", "after_2010")
	d.Insert("rating", "Swim", "2")

	p, _ := wdpt.ParseQuery(`
		(recorded_by(?x, ?y) AND published(?x, "after_2010"))
		OPT rating(?x, ?z)`)
	for _, h := range p.Evaluate(d) {
		fmt.Println(h)
	}
	// Output:
	// {x -> Our_love, y -> Caribou}
	// {x -> Swim, y -> Caribou, z -> 2}
}

// ExamplePatternTree_MaxEval shows the maximal-mappings semantics of
// Section 3.4 (the paper's Example 7).
func ExamplePatternTree_MaxEval() {
	d := wdpt.NewDatabase()
	d.Insert("recorded_by", "Swim", "Caribou")
	d.Insert("published", "Swim", "after_2010")
	d.Insert("rating", "Swim", "2")

	p, _ := wdpt.ParseQuery(`SELECT ?y ?z WHERE
		(recorded_by(?x, ?y) AND published(?x, "after_2010"))
		OPT rating(?x, ?z)`)
	eng := wdpt.AutoEngine()
	fmt.Println(p.MaxEval(d, wdpt.Mapping{"y": "Caribou"}, eng))
	fmt.Println(p.MaxEval(d, wdpt.Mapping{"y": "Caribou", "z": "2"}, eng))
	// Output:
	// false
	// true
}

// ExampleApproximate computes a tractable approximation of an intractable
// pattern (Section 5.2).
func ExampleApproximate() {
	tri, _ := wdpt.ParseWDPT(`ANS(?x) { e(?a,?b), e(?b,?c), e(?c,?a), v(?x) }`)
	ap, _ := wdpt.Approximate(tri, wdpt.WB(1), wdpt.ApproxOptions{})
	fmt.Println(wdpt.Subsumes(ap, tri, wdpt.SubsumeOptions{}))
	// Output:
	// true
}

func TestFacadeUnionOptimizer(t *testing.T) {
	p, err := wdpt.ParseWDPT(`ANS(?x) { E(?a,?b), E(?b,?a), V(?x) }`)
	if err != nil {
		t.Fatal(err)
	}
	u, err := wdpt.NewUnion(p)
	if err != nil {
		t.Fatal(err)
	}
	o := wdpt.OptimizeUnion(u, wdpt.TW(1), 0)
	if !o.Tractable() {
		t.Fatal("symmetric edge union should be tractable")
	}
	d := wdpt.NewDatabase()
	d.Insert("E", "a", "b")
	d.Insert("E", "b", "a")
	d.Insert("V", "v")
	eng := wdpt.AutoEngine()
	if !o.PartialEval(d, wdpt.Mapping{"x": "v"}, eng) {
		t.Fatal("partial answer lost through the union witness")
	}
}

func TestFacadeRDF(t *testing.T) {
	p, err := wdpt.ParseQuery(`a(?x) OPT b(?x, ?y)`)
	if err != nil {
		t.Fatal(err)
	}
	enc := wdpt.EncodeRDF(p)
	if !wdpt.IsRDFTree(enc) || wdpt.IsRDFTree(p) {
		t.Fatal("RDF façade wrong")
	}
	d := wdpt.NewDatabase()
	d.Insert("a", "1")
	d.Insert("b", "1", "2")
	if got := len(enc.Evaluate(wdpt.EncodeRDFDatabase(d))); got != 1 {
		t.Fatalf("encoded answers = %d", got)
	}
}

func TestFacadeFormatDatabaseRoundTrip(t *testing.T) {
	d := wdpt.NewDatabase()
	d.Insert("rel", "a value with spaces", "plain")
	back, err := wdpt.ParseDatabase(wdpt.FormatDatabase(d))
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != d.String() {
		t.Fatal("round trip changed the database")
	}
}

func TestFacadeSPARQLSyntax(t *testing.T) {
	p, err := wdpt.ParseSPARQL(`SELECT ?y ?z WHERE {
		?x recorded_by ?y .
		?x published "after_2010" .
		OPTIONAL { ?x rating ?z }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	ts := wdpt.NewTripleStore("triple")
	ts.Add("Swim", "recorded_by", "Caribou")
	ts.Add("Swim", "published", "after_2010")
	ts.Add("Swim", "rating", "2")
	answers := p.Evaluate(ts.Database)
	if len(answers) != 1 || answers[0]["z"] != "2" {
		t.Fatalf("answers = %v", answers)
	}
	u, err := wdpt.ParseSPARQLUnion(`SELECT ?x WHERE { ?x a b } UNION SELECT ?x WHERE { ?x c d }`)
	if err != nil || len(u.Trees()) != 2 {
		t.Fatalf("union: %v", err)
	}
}
