package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDataset(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSelfcheck boots the whole daemon on an ephemeral port and runs its
// built-in end-to-end probe — the same smoke scripts/check.sh performs.
func TestSelfcheck(t *testing.T) {
	music := writeDataset(t, "music.txt", "recorded_by(Swim, Caribou).\npublished(Swim, after_2010).\n")
	chain := writeDataset(t, "chain.txt", "E(0, 1).\nE(1, 2).\n")
	var stdout, stderr strings.Builder
	code := run([]string{"-selfcheck", "-dataset", "music=" + music, "-dataset", "chain=" + chain}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "selfcheck ok (2 dataset(s)") {
		t.Fatalf("stdout = %q, want a selfcheck ok summary", stdout.String())
	}
	if !strings.Contains(stdout.String(), "backend round-trip ok (2 dataset(s)") {
		t.Fatalf("stdout = %q, want a backend round-trip ok line", stdout.String())
	}
}

func TestSelfcheckFailsOnBrokenDataset(t *testing.T) {
	bad := writeDataset(t, "bad.txt", "not a database(\n")
	var stdout, stderr strings.Builder
	if code := run([]string{"-selfcheck", "-dataset", "bad=" + bad}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code %d, want 2 (registry must refuse to start)", code)
	}
	if !strings.Contains(stderr.String(), `dataset "bad"`) {
		t.Fatalf("stderr = %q, want the dataset named", stderr.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no datasets: exit %d, want 2", code)
	}
	if code := run([]string{"-dataset", "nameonly"}, &stdout, &stderr); code != 2 {
		t.Fatalf("malformed -dataset: exit %d, want 2", code)
	}
	if code := run([]string{"-dataset", "d=a.txt", "-dataset", "d=b.txt"}, &stdout, &stderr); code != 2 {
		t.Fatalf("duplicate -dataset: exit %d, want 2", code)
	}
}
