// Command wdptd serves WDPT evaluation over HTTP: a dataset registry of
// named databases, POST /v1/query mapped onto the consolidated Solve API,
// weighted admission control, and a bounded LRU result cache. The response
// body is byte-identical to wdpteval -json output for the same query and
// options; budget trips map onto the same taxonomy as the CLI exit codes
// (504 deadline, 413 tuple budget, 206 answer limit). See docs/SERVER.md.
//
//	wdptd -listen 127.0.0.1:8080 -dataset music=examples/data/music.txt
//
// Signals: SIGHUP hot-reloads every dataset file (atomically; a failed
// reload keeps the previous snapshots serving); SIGINT/SIGTERM drain
// in-flight queries under -shutdown-timeout, cancelling their evaluation
// contexts when the deadline passes.
//
// Persistence: with -snapshot-dir, startup and hot reload prefer a durable
// binary snapshot (<dir>/<name>.snap, docs/STORAGE.md) over reparsing the
// dataset text; corrupt snapshots are quarantined aside and counted, never
// served. POST /admin/snapshot persists every current dataset through the
// crash-safe writer. See docs/ROBUSTNESS.md.
//
// Clustering: with -role coordinator and -cluster-peers, the node fronts a
// sharded fleet (docs/CLUSTER.md): /v1/query routes to the dataset's
// consistent-hash owner, eligible union queries scatter-gather across
// healthy members with byte-identical merged responses, GET /v1/cluster
// reports peer health and ring assignment, and /metrics additionally
// carries the per-peer latency and per-endpoint attempt families. Members
// run with the default -role member and need no cluster flags.
//
//	-listen addr            listen address (default 127.0.0.1:8080)
//	-dataset name=path      register a dataset (repeatable, at least one)
//	-role r                 coordinator or member (default member)
//	-cluster-peers list     comma-separated member base URLs (coordinator)
//	-health-interval d      background peer health-probe period
//	-vnodes n               consistent-hash virtual nodes per peer
//	-snapshot-dir dir       durable snapshot directory: load <name>.snap at
//	                        startup/reload when present, enable
//	                        POST /admin/snapshot (empty disables)
//	-max-inflight n         total in-flight parallelism (0 = NumCPU)
//	-max-queue n            admission wait-queue bound; overflow is 429
//	-width-bound k          reject queries not globally in TW(k) with 422
//	-cache n                result-cache entries (0 disables)
//	-pprof                  mount net/http/pprof under /debug/pprof/
//	-shutdown-timeout d     drain deadline for graceful shutdown
//	-query-log dest         structured JSON-lines query log: stderr (default),
//	                        stdout, off, or a file path
//	-slow-query-threshold d promote queries at or above d to WARN with their
//	                        span tree inline (0 disables)
//	-selfcheck              start on an ephemeral port, probe the API once
//	                        (health, datasets, one query per dataset, both
//	                        metrics endpoints), verify each dataset's probe
//	                        query round-trips byte-identically on both
//	                        storage backends (docs/STORAGE.md) and through
//	                        a snapshot save -> load -> query cycle, exit
//	-metrics-out path       with -selfcheck, write the scraped /metrics
//	                        exposition to this file
//
// Observability: GET /metrics serves Prometheus text exposition 0.0.4
// (latency histograms, gauges, counters, Go runtime metrics); the JSON
// counter snapshot stays at GET /metrics.json; POST /v1/query?trace=1
// returns the request's span tree in the report body. See
// docs/OBSERVABILITY.md and docs/SERVER.md.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"wdpt/internal/cluster"
	"wdpt/internal/core"
	"wdpt/internal/db"
	"wdpt/internal/db/snapshot"
	"wdpt/internal/obs"
	"wdpt/internal/report"
	"wdpt/internal/server"
	"wdpt/internal/server/client"
	"wdpt/internal/sparql"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// datasetFlags collects repeated -dataset name=path specs.
type datasetFlags struct {
	specs map[string]string
}

// String renders the specs deterministically (sorted by name).
func (d *datasetFlags) String() string {
	names := make([]string, 0, len(d.specs))
	for name := range d.specs {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, name+"="+d.specs[name])
	}
	return strings.Join(parts, ",")
}

// Set parses one name=path spec.
func (d *datasetFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	if d.specs == nil {
		d.specs = make(map[string]string)
	}
	if _, dup := d.specs[name]; dup {
		return fmt.Errorf("duplicate dataset %q", name)
	}
	d.specs[name] = path
	return nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wdptd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var datasets datasetFlags
	fs.Var(&datasets, "dataset", "name=path dataset spec (repeatable, at least one required)")
	listen := fs.String("listen", "127.0.0.1:8080", "listen address")
	snapshotDir := fs.String("snapshot-dir", "", "durable snapshot directory: prefer <name>.snap over reparsing, enable POST /admin/snapshot (empty disables)")
	maxInflight := fs.Int("max-inflight", 0, "total in-flight parallelism across queries (0 = NumCPU)")
	maxQueue := fs.Int("max-queue", 16, "admission wait-queue bound; overflow is rejected with 429")
	widthBound := fs.Int("width-bound", 0, "reject queries not globally in TW(k) with 422 (0 = no bound)")
	cacheSize := fs.Int("cache", 256, "result-cache entries (0 disables caching)")
	enablePprof := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "drain deadline for graceful shutdown")
	queryLogDest := fs.String("query-log", "stderr", "query log destination: stderr, stdout, off, or a file path")
	slowQuery := fs.Duration("slow-query-threshold", 0, "promote queries at or above this wall time to WARN with their span tree (0 disables)")
	selfcheck := fs.Bool("selfcheck", false, "start on an ephemeral port, probe the API once, and exit")
	metricsOut := fs.String("metrics-out", "", "with -selfcheck, write the scraped /metrics exposition to this file")
	role := fs.String("role", "member", "cluster role: coordinator or member")
	clusterPeers := fs.String("cluster-peers", "", "comma-separated member base URLs (coordinator role)")
	healthInterval := fs.Duration("health-interval", cluster.DefaultProbeInterval, "background peer health-probe period (coordinator role)")
	vnodes := fs.Int("vnodes", cluster.DefaultVirtualNodes, "consistent-hash virtual nodes per peer (coordinator role)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if len(datasets.specs) == 0 {
		fmt.Fprintln(stderr, "wdptd: at least one -dataset name=path is required")
		return 2
	}
	if *role != "member" && *role != "coordinator" {
		fmt.Fprintf(stderr, "wdptd: unknown -role %q (want coordinator or member)\n", *role)
		return 2
	}
	if *role == "coordinator" && strings.TrimSpace(*clusterPeers) == "" {
		fmt.Fprintln(stderr, "wdptd: -role coordinator requires -cluster-peers")
		return 2
	}
	if *role == "member" && strings.TrimSpace(*clusterPeers) != "" {
		fmt.Fprintln(stderr, "wdptd: -cluster-peers requires -role coordinator")
		return 2
	}
	queryLog, logClose, err := openQueryLog(*queryLogDest, stdout, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "wdptd: %v\n", err)
		return 2
	}
	defer logClose()
	st := obs.NewStats()
	reg, err := server.NewRegistryWithConfig(server.RegistryConfig{
		Specs:       datasets.specs,
		SnapshotDir: *snapshotDir,
		Stats:       st,
	})
	if err != nil {
		fmt.Fprintf(stderr, "wdptd: %v\n", err)
		return 2
	}
	srv, err := server.NewServer(server.Config{
		Registry:           reg,
		Stats:              st,
		MaxInFlight:        *maxInflight,
		MaxQueue:           *maxQueue,
		WidthBound:         *widthBound,
		CacheSize:          *cacheSize,
		EnablePprof:        *enablePprof,
		QueryLog:           queryLog,
		SlowQueryThreshold: *slowQuery,
	})
	if err != nil {
		fmt.Fprintf(stderr, "wdptd: %v\n", err)
		return 2
	}
	handler := http.Handler(srv)
	if *role == "coordinator" {
		peers := splitPeers(*clusterPeers)
		coord, cerr := cluster.NewCoordinator(cluster.CoordinatorConfig{
			Local:        srv,
			Peers:        peers,
			VirtualNodes: *vnodes,
			Peer:         cluster.PeerConfig{ProbeInterval: *healthInterval},
		})
		if cerr != nil {
			fmt.Fprintf(stderr, "wdptd: %v\n", cerr)
			return 2
		}
		probeCtx, probeCancel := context.WithCancel(context.Background())
		defer probeCancel()
		coord.Start(probeCtx)
		defer coord.Close()
		handler = coord
		fmt.Fprintf(stdout, "wdptd: coordinator over %d peer(s), %d virtual nodes\n", len(coord.Ring().Peers()), coord.Ring().VirtualNodes())
	}
	addr := *listen
	if *selfcheck {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(stderr, "wdptd: %v\n", err)
		return 1
	}
	// ReadHeaderTimeout bounds slow-header clients (wdptlint R9: never run
	// an http.Server without it).
	hs := &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	if *selfcheck {
		err := selfCheck(fmt.Sprintf("http://%s", ln.Addr()), stdout, *metricsOut)
		if err == nil {
			err = backendRoundTrip(reg, stdout)
		}
		if err == nil {
			err = snapshotRoundTrip(reg, stdout)
		}
		shutdown(srv, hs, *shutdownTimeout)
		if err != nil {
			fmt.Fprintf(stderr, "wdptd: selfcheck: %v\n", err)
			return 1
		}
		return 0
	}

	fmt.Fprintf(stdout, "wdptd: serving %d dataset(s) on %s (registry version %d)\n", len(datasets.specs), ln.Addr(), reg.Version())
	sigCh := make(chan os.Signal, 4)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	defer signal.Stop(sigCh)
	for {
		select {
		case err := <-serveErr:
			fmt.Fprintf(stderr, "wdptd: serve: %v\n", err)
			return 1
		case sig := <-sigCh:
			if sig == syscall.SIGHUP {
				if version, err := reg.Reload(); err != nil {
					fmt.Fprintf(stderr, "wdptd: reload failed (previous snapshots keep serving): %v\n", err)
				} else {
					srv.Stats().Inc(obs.CtrServerReloads)
					fmt.Fprintf(stdout, "wdptd: reloaded datasets (registry version %d)\n", version)
				}
				continue
			}
			fmt.Fprintf(stdout, "wdptd: %v received, draining (deadline %s)\n", sig, *shutdownTimeout)
			shutdown(srv, hs, *shutdownTimeout)
			return 0
		}
	}
}

// splitPeers parses the comma-separated -cluster-peers list, dropping empty
// entries.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// shutdown drains in-flight queries under the deadline (cancelling their
// contexts past it), then closes the listener and connections.
func shutdown(srv *server.Server, hs *http.Server, timeout time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	_ = srv.Shutdown(ctx)
	_ = hs.Shutdown(context.Background())
}

// openQueryLog resolves the -query-log destination into a JSON-lines slog
// logger: "off" disables it, "stderr"/"stdout" write to the process
// streams, anything else is an append-mode file path.
func openQueryLog(dest string, stdout, stderr io.Writer) (*slog.Logger, func(), error) {
	noop := func() {}
	switch dest {
	case "off", "":
		return nil, noop, nil
	case "stderr":
		return slog.New(slog.NewJSONHandler(stderr, nil)), noop, nil
	case "stdout":
		return slog.New(slog.NewJSONHandler(stdout, nil)), noop, nil
	}
	f, err := os.OpenFile(dest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, noop, fmt.Errorf("opening query log: %w", err)
	}
	return slog.New(slog.NewJSONHandler(f, nil)), func() { _ = f.Close() }, nil
}

// selfCheck probes a freshly started server end to end: health, the dataset
// listing, one enumeration query per dataset built from its first relation,
// and both metrics endpoints — the Prometheus exposition must parse with
// cumulative, monotone histogram buckets and carry the per-request
// histogram, and the JSON snapshot must report the probe requests. It is
// the smoke test scripts/check.sh runs against examples/. When metricsOut
// is non-empty, the scraped exposition is written there (the CI artifact).
func selfCheck(base string, stdout io.Writer, metricsOut string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := client.New(base, nil)
	h, err := c.Health(ctx)
	if err != nil {
		return err
	}
	if h.Status != "ok" {
		return fmt.Errorf("health status %q, want ok", h.Status)
	}
	list, err := c.Datasets(ctx)
	if err != nil {
		return err
	}
	if len(list.Datasets) == 0 {
		return fmt.Errorf("dataset listing is empty")
	}
	queries := 0
	for _, ds := range list.Datasets {
		if len(ds.Relations) == 0 || ds.Relations[0].Arity == 0 {
			return fmt.Errorf("dataset %q has no probeable relation", ds.Name)
		}
		rel := ds.Relations[0]
		vars := make([]string, rel.Arity)
		for i := range vars {
			vars[i] = fmt.Sprintf("?v%d", i+1)
		}
		query := fmt.Sprintf("SELECT ?v1 WHERE %s(%s)", rel.Name, strings.Join(vars, ", "))
		res, err := c.Query(ctx, server.Request{Dataset: ds.Name, Query: query, Parallelism: 1})
		if err != nil {
			return fmt.Errorf("dataset %q: %w", ds.Name, err)
		}
		if res.Status != http.StatusOK || res.Report == nil || res.Report.AnswerCount == nil {
			return fmt.Errorf("dataset %q: status %d, want 200 with a report", ds.Name, res.Status)
		}
		queries++
	}
	if err := checkMetrics(ctx, c, queries, metricsOut); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wdptd: selfcheck ok (%d dataset(s), %d probe quer%s, registry version %d, metrics endpoints ok)\n",
		len(list.Datasets), queries, pluralIES(queries), h.Version)
	return nil
}

// checkMetrics sanity-checks both metrics endpoints after the probe
// queries ran.
func checkMetrics(ctx context.Context, c *client.Client, queries int, metricsOut string) error {
	text, err := c.MetricsText(ctx)
	if err != nil {
		return err
	}
	fams, err := obs.ParsePromText(text)
	if err != nil {
		return fmt.Errorf("/metrics does not parse as Prometheus exposition: %w", err)
	}
	if err := obs.CheckHistograms(fams); err != nil {
		return err
	}
	qd := fams[obs.HistQueryDuration.String()]
	if qd == nil || qd.Type != "histogram" || len(qd.Samples) == 0 {
		return fmt.Errorf("/metrics is missing the %s histogram", obs.HistQueryDuration)
	}
	snap, err := c.Metrics(ctx)
	if err != nil {
		return err
	}
	if got := snap["server.requests"]; got < int64(queries) {
		return fmt.Errorf("/metrics.json reports %d requests, want at least %d", got, queries)
	}
	if metricsOut != "" {
		if err := os.WriteFile(metricsOut, []byte(text), 0o644); err != nil {
			return fmt.Errorf("writing -metrics-out: %w", err)
		}
	}
	return nil
}

// backendRoundTrip re-evaluates each dataset's probe query on both storage
// backends — the dataset cloned onto the columnar layout and onto the
// legacy string-map layout — and requires byte-identical report bodies.
// It is the storage-equivalence contract of docs/STORAGE.md checked end to
// end against the operator's real data rather than the test fixtures.
func backendRoundTrip(reg *server.Registry, stdout io.Writer) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	datasets := reg.List()
	for _, ds := range datasets {
		if len(ds.Relations) == 0 {
			return fmt.Errorf("dataset %q has no probeable relation", ds.Name)
		}
		rel := ds.Relations[0]
		vars := make([]string, rel.Arity)
		for i := range vars {
			vars[i] = fmt.Sprintf("?v%d", i+1)
		}
		query := fmt.Sprintf("SELECT %s WHERE %s(%s)",
			strings.Join(vars, " "), rel.Name, strings.Join(vars, ", "))
		u, err := sparql.ParseUnionQuery(query)
		if err != nil {
			return fmt.Errorf("dataset %q: building probe query: %w", ds.Name, err)
		}
		var bodies [2][]byte
		backends := [2]db.Backend{db.BackendColumnar, db.BackendMemory}
		for i, b := range backends {
			res, err := u.Solve(ctx, ds.DB.CloneWithBackend(b), core.SolveOptions{
				Mode:        core.ModeEnumerate,
				Parallelism: 1,
			})
			if err != nil {
				return fmt.Errorf("dataset %q on backend %s: %w", ds.Name, b, err)
			}
			rep := report.Report{Mode: core.ModeEnumerate.String(), Engine: "auto", Parallelism: 1}
			rep.SetAnswers(res.Answers)
			var buf bytes.Buffer
			if err := report.Encode(&buf, rep); err != nil {
				return fmt.Errorf("dataset %q on backend %s: %w", ds.Name, b, err)
			}
			bodies[i] = buf.Bytes()
		}
		if !bytes.Equal(bodies[0], bodies[1]) {
			return fmt.Errorf("dataset %q: backends disagree (%s: %d bytes, %s: %d bytes)",
				ds.Name, backends[0], len(bodies[0]), backends[1], len(bodies[1]))
		}
	}
	fmt.Fprintf(stdout, "wdptd: selfcheck backend round-trip ok (%d dataset(s), col == mem byte-identical)\n", len(datasets))
	return nil
}

// snapshotRoundTrip persists each dataset through the crash-safe snapshot
// writer into a temporary directory, loads it back through the paranoid
// loader, and requires the probe query to evaluate byte-identically on the
// parsed and on the reloaded database — the persistence contract of
// docs/STORAGE.md checked end to end against the operator's real data.
func snapshotRoundTrip(reg *server.Registry, stdout io.Writer) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	dir, err := os.MkdirTemp("", "wdptd-selfcheck-snap-")
	if err != nil {
		return fmt.Errorf("snapshot round-trip: %w", err)
	}
	defer func() { _ = os.RemoveAll(dir) }()
	datasets := reg.List()
	for _, ds := range datasets {
		if len(ds.Relations) == 0 {
			return fmt.Errorf("dataset %q has no probeable relation", ds.Name)
		}
		rel := ds.Relations[0]
		vars := make([]string, rel.Arity)
		for i := range vars {
			vars[i] = fmt.Sprintf("?v%d", i+1)
		}
		query := fmt.Sprintf("SELECT %s WHERE %s(%s)",
			strings.Join(vars, " "), rel.Name, strings.Join(vars, ", "))
		u, err := sparql.ParseUnionQuery(query)
		if err != nil {
			return fmt.Errorf("dataset %q: building probe query: %w", ds.Name, err)
		}
		path := filepath.Join(dir, ds.Name+".snap")
		if err := snapshot.Write(path, ds.DB); err != nil {
			return fmt.Errorf("dataset %q: saving snapshot: %w", ds.Name, err)
		}
		loaded, err := snapshot.Read(path, db.DefaultBackend())
		if err != nil {
			return fmt.Errorf("dataset %q: loading snapshot: %w", ds.Name, err)
		}
		var bodies [2][]byte
		for i, d := range [2]*db.Database{ds.DB, loaded} {
			res, err := u.Solve(ctx, d, core.SolveOptions{
				Mode:        core.ModeEnumerate,
				Parallelism: 1,
			})
			if err != nil {
				return fmt.Errorf("dataset %q (snapshot round-trip): %w", ds.Name, err)
			}
			rep := report.Report{Mode: core.ModeEnumerate.String(), Engine: "auto", Parallelism: 1}
			rep.SetAnswers(res.Answers)
			var buf bytes.Buffer
			if err := report.Encode(&buf, rep); err != nil {
				return fmt.Errorf("dataset %q (snapshot round-trip): %w", ds.Name, err)
			}
			bodies[i] = buf.Bytes()
		}
		if !bytes.Equal(bodies[0], bodies[1]) {
			return fmt.Errorf("dataset %q: snapshot round-trip disagrees with the parsed dataset (%d vs %d bytes)",
				ds.Name, len(bodies[0]), len(bodies[1]))
		}
	}
	fmt.Fprintf(stdout, "wdptd: selfcheck snapshot round-trip ok (%d dataset(s), save -> load -> query byte-identical)\n", len(datasets))
	return nil
}

// pluralIES returns the y/ies suffix.
func pluralIES(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}
