package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// The baseline is the lint gate's ratchet. Findings recorded in the baseline
// file are grandfathered (reported nowhere, exit code unaffected); any
// finding NOT in the baseline fails the run, and any baseline entry that no
// longer fires also fails the run until it is removed. The baseline can
// therefore only shrink: pre-existing debt burns down, new debt is rejected.
//
// Entries are matched by (file, rule, msg) — line numbers shift with
// unrelated edits, so they are recorded for human readers but ignored by the
// matcher. Duplicate (file, rule, msg) findings are matched as a multiset:
// a baseline entry grandfathers exactly one occurrence.

// BaselineEntry is one grandfathered finding.
type BaselineEntry struct {
	File string `json:"file"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
	Line int    `json:"line,omitempty"` // informational only; not matched
}

func baselineKey(file, rule, msg string) string {
	return file + "\x00" + rule + "\x00" + msg
}

// readBaselineFile loads the baseline; a missing file is an empty baseline.
func readBaselineFile(path string) ([]BaselineEntry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []BaselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	return entries, nil
}

// writeBaselineFile records findings as the new baseline, sorted for stable
// diffs.
func writeBaselineFile(path string, findings []Finding) error {
	entries := make([]BaselineEntry, 0, len(findings))
	for _, f := range findings {
		entries = append(entries, BaselineEntry{File: f.File, Rule: f.Rule, Msg: f.Msg, Line: f.Line})
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Msg != b.Msg {
			return a.Msg < b.Msg
		}
		return a.Line < b.Line
	})
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// applyBaseline splits findings against the baseline: it returns the
// findings not grandfathered (new debt) and the baseline entries that no
// longer fire (stale entries that must be deleted to keep the ratchet
// tight).
func applyBaseline(findings []Finding, base []BaselineEntry) (fresh []Finding, stale []BaselineEntry) {
	budget := make(map[string]int, len(base))
	for _, e := range base {
		budget[baselineKey(e.File, e.Rule, e.Msg)]++
	}
	for _, f := range findings {
		k := baselineKey(f.File, f.Rule, f.Msg)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		fresh = append(fresh, f)
	}
	for _, e := range base {
		k := baselineKey(e.File, e.Rule, e.Msg)
		if budget[k] > 0 {
			budget[k]--
			stale = append(stale, e)
		}
	}
	return fresh, stale
}
