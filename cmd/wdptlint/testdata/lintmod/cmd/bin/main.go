// Command bin verifies that binaries are exempt from R2 and R4.
package main

import "fmt"

func main() {
	fmt.Println("binaries may print")
	if len(fmt.Sprint()) > 0 {
		panic("binaries may panic")
	}
}
