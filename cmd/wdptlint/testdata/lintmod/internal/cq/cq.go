// Package cq is the fixture stand-in for the conjunctive-query layer: R13
// matches []cq.Mapping collections, R5 requires doc comments on its
// exported surface, and the package is one of the R12 determinism-sensitive
// sinks.
package cq

// Mapping is one candidate answer: variable name to constant.
type Mapping map[string]string

// Arity reports the number of bound variables.
func (m Mapping) Arity() int { return len(m) }
