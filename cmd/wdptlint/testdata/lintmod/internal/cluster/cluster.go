// Package cluster exercises the R17 outbound-HTTP timeout rule: the
// coordinator package dials peers, so every exchange must be bounded by a
// client Timeout or a request context.
package cluster

import (
	"context"
	"net/http"
	"time"
)

// Bare fetches through the package-level helper, which routes through the
// timeout-less http.DefaultClient and ignores the context entirely.
func Bare(ctx context.Context, url string) (*http.Response, error) {
	return http.Get(url) // want R17
}

// BarePost is the POST variant of the same hazard.
func BarePost(ctx context.Context, url string) (*http.Response, error) {
	return http.Post(url, "application/json", nil) // want R17
}

// Default sends through the shared global client, which has no Timeout.
func Default(ctx context.Context, req *http.Request) (*http.Response, error) {
	return http.DefaultClient.Do(req) // want R17
}

// Unbounded constructs a client that never times an exchange out.
func Unbounded() *http.Client {
	return &http.Client{} // want R17
}

// NoTimeout sets other fields but still no Timeout.
func NoTimeout(rt http.RoundTripper) *http.Client {
	return &http.Client{Transport: rt} // want R17
}

// Bounded sets Timeout; exempt.
func Bounded() *http.Client {
	return &http.Client{Timeout: 5 * time.Minute}
}

// ThroughProvided sends through a caller-constructed client; construction
// sites are where R17 looks, so this is exempt.
func ThroughProvided(ctx context.Context, hc *http.Client, req *http.Request) (*http.Response, error) {
	return hc.Do(req)
}

// Suppressed documents a deliberate exception.
func Suppressed() *http.Client {
	//lint:ignore R17 probe client: every request carries its own context deadline
	return &http.Client{}
}
