// Package snapshot is the fixture stand-in for the crash-safe persistence
// writer: atomic.go is the one file R16 sanctions for raw os mutations.
package snapshot

import "os"

// WriteFileAtomic is the sanctioned crash-safe write path; no R16 findings
// fire in this file.
func WriteFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
