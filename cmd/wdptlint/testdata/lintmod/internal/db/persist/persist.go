// Package persist exercises R16: raw os file-mutation primitives inside the
// storage layer (internal/db/...) are findings everywhere except the
// sanctioned crash-safe writer file.
package persist

import "os"

// SaveRaw writes durable state with the raw primitives R16 forbids.
func SaveRaw(path string, data []byte) error {
	f, err := os.Create(path + ".tmp") // want R16
	if err != nil {
		return err
	}
	_ = f.Close()
	if err := os.WriteFile(path+".tmp", data, 0o644); err != nil { // want R16
		return err
	}
	return os.Rename(path+".tmp", path) // want R16
}

// SaveSuppressed shows a directive silencing one sanctioned exception.
func SaveSuppressed(path string, data []byte) error {
	//lint:ignore R16 fixture: a documented one-off outside the writer
	return os.WriteFile(path, data, 0o644)
}

// ReadBack stays silent: reads and removals are not mutation primitives.
func ReadBack(path string) ([]byte, error) {
	defer func() { _ = os.Remove(path + ".tmp") }()
	return os.ReadFile(path)
}
