// Package db is the fixture stand-in for the storage layer: R13 matches
// []db.Tuple collections, and R10 matches (*Relation).Matching as a
// cancellable sink. The package itself is R10-exempt substrate.
package db

// Tuple is one stored row.
type Tuple []string

// Relation is a fixture relation.
type Relation struct{ rows []Tuple }

// Matching is the index-scan sink for R10.
func (r *Relation) Matching(t Tuple) []Tuple {
	if len(t) == 0 {
		return nil
	}
	return r.rows
}

// Tuples is the deprecated string accessor R15 forbids in the kernels.
//
// Deprecated: fixture stand-in for the legacy string materializer.
func (r *Relation) Tuples() []Tuple { return r.rows }
