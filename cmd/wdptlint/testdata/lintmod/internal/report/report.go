// Package report is the fixture determinism-sensitive sink: R12 reports
// the call edges that carry wall-clock, global-rand, or map-order values
// into it.
package report

import (
	"strconv"
	"time"

	"lintmod/internal/obs"
	"lintmod/internal/r12"
)

// Render stamps the artifact from a taint source one call away.
func Render() string {
	return strconv.FormatInt(r12.Stamp(), 10) // want R12
}

// RenderWrapped reaches the same source two calls away; the taint
// propagates through the interprocedural chain.
func RenderWrapped() string {
	return strconv.FormatInt(r12.Wrapped(), 10) // want R12
}

// RenderDirect reads the clock inside the sink package itself.
func RenderDirect() string {
	return time.Now().Format(time.RFC3339) // want R12
}

// RenderJitter carries a global-rand draw into the sink.
func RenderJitter() float64 {
	return r12.Jitter() // want R12
}

// RenderKeys carries unsorted map-iteration order into the sink.
func RenderKeys(m map[string]int) []string {
	return r12.Keys(m) // want R12
}

// RenderFixed uses only deterministic inputs; clean.
func RenderFixed() string {
	return strconv.FormatInt(r12.Fixed(), 10)
}

// RenderElapsed reads the run's elapsed time through the whitelisted
// observability layer: a measurement about the run, not answer bytes.
func RenderElapsed() string {
	return strconv.FormatInt(obs.ElapsedNS(), 10)
}

// RenderSuppressed documents a reviewed wall-clock use.
func RenderSuppressed() string {
	//lint:ignore R12 fixture: timestamp reviewed as metadata, not answer bytes
	return strconv.FormatInt(r12.Stamp(), 10)
}
