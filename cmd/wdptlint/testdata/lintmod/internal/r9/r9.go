// Package r9 exercises the R9 bounded-header-read rule.
package r9

import (
	"net"
	"net/http"
	"time"
)

// Naked starts a server through the package-level helper, which builds an
// http.Server with no timeouts at all.
func Naked(addr string, h http.Handler) error {
	return http.ListenAndServe(addr, h) // want R9
}

// NakedTLS is the TLS variant of the same hazard.
func NakedTLS(addr, cert, key string, h http.Handler) error {
	return http.ListenAndServeTLS(addr, cert, key, h) // want R9
}

// Unbounded constructs a server that never times out header reads.
func Unbounded(h http.Handler) *http.Server {
	return &http.Server{Handler: h} // want R9
}

// Empty is the zero literal, equally unbounded.
func Empty() *http.Server {
	return &http.Server{} // want R9
}

// Bounded sets ReadHeaderTimeout; exempt.
func Bounded(h http.Handler) *http.Server {
	return &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
}

// ServeConfigured serves through a method on an explicitly constructed
// server; the construction site is where R9 looks, so this is exempt.
func ServeConfigured(s *http.Server, ln net.Listener) error {
	return s.Serve(ln)
}

// Suppressed documents a deliberate exception.
func Suppressed(h http.Handler) *http.Server {
	//lint:ignore R9 test-only server torn down before any client connects
	return &http.Server{Handler: h}
}

// ClientElsewhere constructs a timeout-less http.Client outside the
// outbound-HTTP packages; R17 is scoped to internal/cluster and
// internal/server/client, so this stays silent.
func ClientElsewhere() *http.Client {
	return &http.Client{}
}
