// Package par is the fixture stand-in for the worker-pool substrate. The
// whole-program rules match sinks and carriers by module-relative path, so
// this package supplies par.(*Pool).Run and par.Map at the paths R10
// expects; the package itself is exempt from R10 and R11 (it implements the
// cancellation machinery rather than consuming it).
package par

// Pool is the fixture worker pool; a *Pool parameter marks a function as a
// cancellation carrier for R10.
type Pool struct{ workers int }

// New returns a fixture pool.
func New(workers int) *Pool { return &Pool{workers: workers} }

// Run is a cancellable sink for R10.
func (p *Pool) Run(task func()) { task() }

// Map is the other fan-out sink.
func Map(n int, f func(int)) {
	for i := 0; i < n; i++ {
		f(i)
	}
}
