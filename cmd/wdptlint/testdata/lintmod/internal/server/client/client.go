// Package client exercises R17's second scoped package: the typed API
// client is the other place outbound connections to wdptd are opened.
package client

import (
	"context"
	"net/http"
)

// Probe head-checks a peer through the package-level helper — the
// timeout-less default client again.
func Probe(ctx context.Context, url string) (*http.Response, error) {
	return http.Head(url) // want R17
}

// Fetch sends through a caller-provided client; exempt — R17 polices
// construction sites and the default-client escape hatches.
func Fetch(ctx context.Context, hc *http.Client, req *http.Request) (*http.Response, error) {
	return hc.Do(req)
}
