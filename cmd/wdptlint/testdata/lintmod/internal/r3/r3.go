// Package r3 exercises the R3 unchecked-error rule.
package r3

import (
	"fmt"
	"io"
	"strings"
)

// Report writes a line and drops the error.
func Report(w io.Writer) {
	fmt.Fprintln(w, "report") // want R3
}

// CloseLater defers a Close whose error is dropped.
func CloseLater(c io.Closer) {
	defer c.Close() // want R3
}

// Render writes to a strings.Builder, whose writes never fail; exempt.
func Render() string {
	var b strings.Builder
	b.WriteString("a")
	fmt.Fprintf(&b, "%d", 1)
	return b.String()
}

// BestEffort deliberately ignores a diagnostic write.
func BestEffort(w io.Writer) {
	//lint:ignore R3 best-effort diagnostic write
	fmt.Fprintln(w, "diagnostic")
}
