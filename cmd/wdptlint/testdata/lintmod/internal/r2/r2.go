// Package r2 exercises the R2 no-panic rule.
package r2

import "log"

// Explode panics from a library package.
func Explode() {
	panic("boom") // want R2
}

// Die calls log.Fatal from a library package.
func Die() {
	log.Fatal("fatal") // want R2
}

// MustPositive documents its programming-error contract; the directive on
// the line above the panic suppresses the finding.
func MustPositive(n int) int {
	if n <= 0 {
		//lint:ignore R2 documented programming-error contract
		panic("r2: n must be positive")
	}
	return n
}

// Unreasoned shows that a directive without a reason suppresses nothing.
func Unreasoned() {
	//lint:ignore R2
	panic("still flagged") // want R2
}
