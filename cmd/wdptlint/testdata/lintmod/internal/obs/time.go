package obs

import "time"

// ElapsedNS reads the wall clock inside the whitelisted observability
// package: R12 taint stops at this boundary, so sink packages may call it.
func ElapsedNS() int64 { return time.Now().UnixNano() }
