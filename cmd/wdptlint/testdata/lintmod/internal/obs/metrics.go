package obs

// Metric-name registries mimicking the real internal/obs shape so the R14
// rule can be exercised: documented names, a non-snake-case name, a
// cross-registry duplicate, an undocumented name, and a suppressed case.

// Hist identifies one histogram.
type Hist int

// The registered histograms.
const (
	HistDocumented Hist = iota
	HistBadCase
	HistUndocumented
	HistSuppressed

	numHists
)

// histNames maps histograms to their stable names; rule R14 checks shape,
// uniqueness, and glossary containment.
var histNames = [numHists]string{
	HistDocumented:   "obs_hist_documented_seconds",
	HistBadCase:      "obs_Hist_BadCase",               // want R14
	HistUndocumented: "obs_hist_missing_from_glossary", // want R14
	//lint:ignore R14 fixture: renamed histogram awaiting its glossary entry
	HistSuppressed: "obs_hist_suppressed_and_missing",
}

// Gauge identifies one gauge.
type Gauge int

// The registered gauges.
const (
	GaugeDocumented Gauge = iota
	GaugeDuplicate

	numGauges
)

// gaugeNames maps gauges to their stable names.
var gaugeNames = [numGauges]string{
	GaugeDocumented: "obs_gauge_documented",
	GaugeDuplicate:  "obs_hist_documented_seconds", // want R14
}

// runtimeMetricNames lists the runtime gauges sampled on scrape.
var runtimeMetricNames = []string{
	"obs_runtime_documented",
	"obs_runtime_missing_from_glossary", // want R14
}

// HistString returns the histogram's stable name.
func HistString(h Hist) string { return histNames[h] }

// GaugeString returns the gauge's stable name.
func GaugeString(g Gauge) string { return gaugeNames[g] }

// RuntimeNames returns the runtime metric names.
func RuntimeNames() []string { return runtimeMetricNames }
