// Package obs mimics the real counter registry shape so the R6 glossary
// rule can be exercised: documented names, an undocumented name, and a
// suppressed case.
package obs

// Counter identifies one counter.
type Counter int

// The registered counters.
const (
	CtrDocumented Counter = iota
	CtrAlsoDocumented
	CtrUndocumented
	CtrSuppressed

	numCounters
)

// counterNames maps counters to their stable names; rule R6 checks each
// against docs/OBSERVABILITY.md.
var counterNames = [numCounters]string{
	CtrDocumented:     "obs.documented",
	CtrAlsoDocumented: "obs.also_documented",
	CtrUndocumented:   "obs.missing_from_glossary", // want R6
	//lint:ignore R6 fixture: renamed counter awaiting its glossary entry
	CtrSuppressed: "obs.suppressed_and_missing",
}

// String returns the counter's stable name.
func (c Counter) String() string { return counterNames[c] }
