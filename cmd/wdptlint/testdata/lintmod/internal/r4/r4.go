// Package r4 exercises the R4 stdout rule.
package r4

import (
	"fmt"
	"os"
)

// Announce prints from a library package.
func Announce() {
	fmt.Println("announce") // want R4
}

// Out returns the process stdout.
func Out() *os.File {
	return os.Stdout // want R4
}

// Debug is a suppressed escape hatch.
func Debug() {
	fmt.Println("debug") //lint:ignore R4 fixture keeps a debugging helper by design
}
