// Package guard is the fixture stand-in for the budget meter: R10 and R13
// match guard.(*Meter) methods as sinks by module-relative path, a *Meter
// parameter marks a cancellation carrier, and the package is whitelisted as
// an R12 taint boundary.
package guard

// Meter is the fixture budget meter.
type Meter struct{ spent int64 }

// ChargeTuples records n tuples against the budget.
func (m *Meter) ChargeTuples(n int64) { m.spent += n }

// Checkpoint is the periodic budget check.
func (m *Meter) Checkpoint() {}

// TryAnswer reports whether another answer fits the budget.
func (m *Meter) TryAnswer() bool { return m.spent >= 0 }
