// Package core exercises the R5 doc-comment rule.
package core

// Documented carries a doc comment.
func Documented() {}

func Undocumented() {} // want R5

// Thing is documented.
type Thing struct{}

type Widget struct{} // want R5

// Limit is documented.
const Limit = 1

const Budget = 2 // want R5

var Verbose bool // want R5

// Grouped declarations share the declaration doc comment; exempt.
var (
	GroupedA = 1
	GroupedB = 2
)

//lint:ignore R5 fixture: the name is self-describing
func Tolerated() {}

// Counter is documented; its exported methods are checked individually.
type Counter struct{ n int }

// Add is documented.
func (c *Counter) Add() { c.n++ }

func (c *Counter) Len() int { return c.n } // want R5

type hidden struct{}

func (h hidden) Exported() {}

// EvaluateBypass is an R7 case in internal/core: documented (R5-clean) but
// neither deprecated nor delegating to Solve.
func EvaluateBypass() bool { return false } // want R7

// EvalDelegating routes through Solve; exempt from R7.
func EvalDelegating(t interface{ Solve() bool }) bool { return t.Solve() }
