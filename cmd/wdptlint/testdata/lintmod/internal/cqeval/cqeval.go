// Package cqeval exercises R13: tuple loops in the evaluation kernels must
// reach the guard meter through the call graph, or be declared — with a
// reason — in the .wdptlint-meterage manifest at the module root.
package cqeval

import (
	"lintmod/internal/cq"
	"lintmod/internal/db"
	"lintmod/internal/guard"
)

// Unmetered loops over candidate mappings with no path to the meter.
func Unmetered(ms []cq.Mapping) int {
	n := 0
	for range ms { // want R13
		n++
	}
	return n
}

// Metered charges the loop's tuples before scanning; clean.
func Metered(m *guard.Meter, ms []cq.Mapping) int {
	m.ChargeTuples(int64(len(ms)))
	n := 0
	for range ms {
		n++
	}
	return n
}

// charge is the indirect metering helper.
func charge(m *guard.Meter, n int) { m.ChargeTuples(int64(n)) }

// MeteredIndirect reaches the meter through a helper call, over a
// len()-bounded for loop; call-graph reachability sees through both.
func MeteredIndirect(m *guard.Meter, ts []db.Tuple) int {
	charge(m, len(ts))
	total := 0
	for i := 0; i < len(ts); i++ {
		total += len(ts[i])
	}
	return total
}

// ColdPath is deliberately unmetered and declared in the manifest; clean.
func ColdPath(ts []db.Tuple) int {
	n := 0
	for range ts {
		n++
	}
	return n
}

// SuppressedScan documents a reviewed unmetered scan inline.
func SuppressedScan(ms []cq.Mapping) int {
	n := 0
	//lint:ignore R13 fixture: bounded by the fixture's own input
	for range ms {
		n++
	}
	return n
}

// The R15 cases: kernels must stay ID-native. Loops below iterate plain
// string slices (not []db.Tuple / []cq.Mapping) so R13 stays out of frame.

// LegacyTuples calls the deprecated string materializer; R15 fires at the
// call even outside a loop.
func LegacyTuples(r *db.Relation) int {
	return len(r.Tuples()) // want R15
}

// HotConcatProbe builds a separator-joined string key per row — the exact
// collision-prone pattern the packed-key idiom replaced.
func HotConcatProbe(seen map[string]bool, rows [][]string) int {
	n := 0
	for _, row := range rows {
		if seen[row[0]+"\x00"+row[1]] { // want R15
			n++
		}
	}
	return n
}

// PackedProbe is the sanctioned idiom: a reused []byte packed key probed
// through the allocation-free string conversion; clean.
func PackedProbe(seen map[string]bool, rows [][]byte) int {
	n := 0
	for _, row := range rows {
		if seen[string(row)] {
			n++
		}
	}
	return n
}

// ColdKeyBuild builds a string key outside any loop; clean.
func ColdKeyBuild(seen map[string]bool, a, b string) bool {
	return seen[a+"|"+b]
}

// SameRow compares tuple components as strings inside the loop.
func SameRow(a, b db.Tuple) bool {
	for i := range a {
		if a[i] != b[i] { // want R15
			return false
		}
	}
	return true
}

// SuppressedLegacy documents a reviewed cold-path string probe inline.
func SuppressedLegacy(seen map[string]bool, rows [][]string) int {
	n := 0
	for _, row := range rows {
		//lint:ignore R15 fixture: cold path, rows bounded by the fixture
		if seen[row[0]+"|"+row[1]] {
			n++
		}
	}
	return n
}
