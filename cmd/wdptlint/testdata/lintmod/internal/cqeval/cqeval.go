// Package cqeval exercises R13: tuple loops in the evaluation kernels must
// reach the guard meter through the call graph, or be declared — with a
// reason — in the .wdptlint-meterage manifest at the module root.
package cqeval

import (
	"lintmod/internal/cq"
	"lintmod/internal/db"
	"lintmod/internal/guard"
)

// Unmetered loops over candidate mappings with no path to the meter.
func Unmetered(ms []cq.Mapping) int {
	n := 0
	for range ms { // want R13
		n++
	}
	return n
}

// Metered charges the loop's tuples before scanning; clean.
func Metered(m *guard.Meter, ms []cq.Mapping) int {
	m.ChargeTuples(int64(len(ms)))
	n := 0
	for range ms {
		n++
	}
	return n
}

// charge is the indirect metering helper.
func charge(m *guard.Meter, n int) { m.ChargeTuples(int64(n)) }

// MeteredIndirect reaches the meter through a helper call, over a
// len()-bounded for loop; call-graph reachability sees through both.
func MeteredIndirect(m *guard.Meter, ts []db.Tuple) int {
	charge(m, len(ts))
	total := 0
	for i := 0; i < len(ts); i++ {
		total += len(ts[i])
	}
	return total
}

// ColdPath is deliberately unmetered and declared in the manifest; clean.
func ColdPath(ts []db.Tuple) int {
	n := 0
	for range ts {
		n++
	}
	return n
}

// SuppressedScan documents a reviewed unmetered scan inline.
func SuppressedScan(ms []cq.Mapping) int {
	n := 0
	//lint:ignore R13 fixture: bounded by the fixture's own input
	for range ms {
		n++
	}
	return n
}
