// Package uwdpt exercises the R7 consolidated-evaluation-surface rule.
package uwdpt

// Tree stands in for a pattern tree.
type Tree struct{}

// Solve is the consolidated entry point; exempt by name.
func (t *Tree) Solve() bool { return true }

// EvalRogue is a fresh evaluation surface: not deprecated, no Solve.
func (t *Tree) EvalRogue() bool { return false } // want R7

// Evaluate delegates to Solve; exempt.
func (t *Tree) Evaluate() bool { return t.Solve() }

// EvalLegacy survives as a frozen wrapper.
//
// Deprecated: use Solve.
func (t *Tree) EvalLegacy() bool { return false }

// PartialEvalRogue is flagged like any other prefix match.
func PartialEvalRogue() bool { return false } // want R7

// MaxEvalHelper routes through a helper that itself names Solve; exempt.
func MaxEvalHelper(t *Tree) bool {
	solve := t.Solve
	return solve()
}

// EvaluateTolerated keeps a deliberate second surface.
//
//lint:ignore R7 fixture: streaming variant with no Solve equivalent
func EvaluateTolerated() {}

// Evaluator is not a function; only func decls are policed.
var Evaluator = 1

// evalPrivate is unexported; exempt.
func evalPrivate() {} //lint:ignore U1000 fixture

// Extend does not match any evaluation prefix; exempt.
func Extend() {}
