// Package r8 exercises the R8 error-chain preservation rule.
package r8

import (
	"errors"
	"fmt"
)

// ErrLimit is a sentinel callers match with errors.Is.
var ErrLimit = errors.New("limit reached")

// Lossy flattens the cause with %v, breaking the errors.Is chain.
func Lossy(err error) error {
	return fmt.Errorf("evaluating: %v", err) // want R8
}

// LossyString flattens the cause into a message with %s.
func LossyString(name string, err error) error {
	return fmt.Errorf("stage %s failed: %s", name, err) // want R8
}

// Wrapped preserves the chain with %w; exempt.
func Wrapped(err error) error {
	return fmt.Errorf("evaluating: %w", err)
}

// Fresh formats only non-error values; exempt.
func Fresh(n int) error {
	return fmt.Errorf("bad width %d", n)
}

// Sentinel returns a matchable sentinel directly; exempt.
func Sentinel() error {
	return ErrLimit
}

// Boundary deliberately severs the chain at a trust boundary.
func Boundary(err error) error {
	//lint:ignore R8 sanitized message: the cause must not leak past this boundary
	return fmt.Errorf("internal failure: %v", err)
}
