// Package r11 exercises goroutine hygiene: a go statement must be provably
// joined in its function by a WaitGroup Wait or a receive from a channel
// the goroutine signals.
package r11

import "sync"

var counter int

func work() { counter++ }

// Leak spawns and forgets; nothing joins the goroutine.
func Leak() {
	go func() { work() }() // want R11
}

// LeakNamed spawns a named function: the body is out of sight, so the join
// cannot be proven here.
func LeakNamed() {
	go work() // want R11
}

// JoinedWait joins through a WaitGroup.
func JoinedWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// JoinedClose joins by receiving from the channel the goroutine closes.
func JoinedClose() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

// JoinedSend joins by receiving the value the goroutine sends.
func JoinedSend() int {
	out := make(chan int, 1)
	go func() { out <- 1 }()
	return <-out
}

// SuppressedHandoff documents a joined-by-protocol case.
func SuppressedHandoff() {
	//lint:ignore R11 fixture: joined by the consumer's drain protocol
	go func() { work() }()
}
