// Package r12 supplies nondeterminism sources for the R12 taint rule: the
// taint findings appear at the call edges inside the sink package
// (internal/report), not here. The unsorted map iteration in Keys is also
// an ordinary local R1 finding.
package r12

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock: a direct taint source.
func Stamp() int64 { return time.Now().UnixNano() }

// Wrapped launders Stamp through one extra call; taint propagates.
func Wrapped() int64 { return Stamp() }

// Jitter draws from the global (unseeded) source: a direct taint source.
func Jitter() float64 { return rand.Float64() }

// Seeded draws from an explicit seeded generator; exempt.
func Seeded(r *rand.Rand) float64 { return r.Float64() }

// Keys returns map keys in iteration order: the unsorted-map-order source.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want R1
	}
	return out
}

// Fixed uses none of the sources; calls to it from sink packages are clean.
func Fixed() int64 { return 42 }
