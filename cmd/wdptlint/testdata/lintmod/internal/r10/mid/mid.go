// Package mid is the middle frame of the R10 cross-package chain: Step
// reaches the pool sink without a carrier (a finding), StepCtx threads the
// caller's context (a carrier, where propagation stops).
package mid

import (
	"context"

	"lintmod/internal/par"
)

// Step reaches the fan-out sink with no way to thread cancellation.
func Step() { // want R10
	pool := par.New(1)
	pool.Run(func() {})
}

// StepCtx carries the caller's context down to the fan-out; propagation
// stops here, so callers above this frame are not implicated through it.
func StepCtx(ctx context.Context) {
	if ctx == nil {
		return
	}
	pool := par.New(1)
	pool.Run(func() {})
}
