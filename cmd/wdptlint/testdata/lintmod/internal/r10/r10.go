// Package r10 exercises the whole-program half of rule R10: the planted
// violation drops the context two calls above the pool sink, and the
// call-graph analysis catches it across the package boundary.
package r10

import (
	"context"

	"lintmod/internal/r10/mid"
)

// Top is the planted violation: it accepts no carrier, but the work two
// frames down fans out on the pool — a budget trip cannot stop it.
func Top() { // want R10
	mid.Step()
}

// TopCtx threads the caller's context; every hop to the sink carries, so
// both frames are clean.
func TopCtx(ctx context.Context) {
	mid.StepCtx(ctx)
}

// AboveCarrier calls only the carrying middle frame: propagation stopped at
// StepCtx, so this frame is not implicated through the graph — but minting
// the fresh context is the per-file half's finding.
func AboveCarrier() {
	mid.StepCtx(context.TODO()) // want R10
}

// Default is the nil-defaulting guard at a public boundary; exempt.
func Default(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

// Legacy is frozen; Deprecated wrappers are exempt from both halves.
//
// Deprecated: use TopCtx.
func Legacy() {
	ctx := context.Background()
	_ = ctx
	mid.Step()
}

//lint:ignore R10 fixture: scheduled for the next carrier refactor
func Suppressed() {
	mid.Step()
}
