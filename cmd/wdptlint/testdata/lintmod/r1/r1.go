// Package r1 exercises the R1 map-order rule.
package r1

import (
	"fmt"
	"io"
	"sort"
)

// Values collects map values in iteration order.
func Values(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want R1
	}
	return out
}

// Dump writes map entries in iteration order.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want R1
	}
}

// Keys uses the canonical sorted-keys idiom, which is exempt.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Local ranges into a slice declared inside the loop body, which is
// per-iteration state and therefore exempt.
func Local(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var row []int
		row = append(row, vs...)
		total += len(row)
	}
	return total
}

// Suppressed documents why the unsorted iteration is safe.
func Suppressed(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) //lint:ignore R1 callers treat the result as an unordered set
	}
	return out
}
