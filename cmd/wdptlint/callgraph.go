package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The whole-program rules (R10-R13) run on a type-resolved cross-package
// call graph built over the full loaded closure — the selected packages
// plus every module package they transitively import. The graph records
// static call edges (direct calls and method calls resolved by go/types);
// calls through function values are invisible to it, which the rules treat
// as a documented approximation. Calls on interface methods are kept as
// edges to the abstract method and expanded — for reachability questions —
// to every module-declared concrete method implementing them, so "core
// calls Engine.Project" reaches the metered engine kernels behind the
// interface.

// callGraph is the static call graph of the loaded module closure.
type callGraph struct {
	l     *loader
	pkgs  []*lintPkg
	decls map[*types.Func]*declSite     // module function/method -> declaration
	calls map[*types.Func][]callEdge    // caller -> static callees
	impls map[*types.Func][]*types.Func // interface method -> module implementations

	// carriers caches carriesCancellation answers per named type.
	carriers map[*types.Named]bool
}

// declSite ties a module function object to its declaration.
type declSite struct {
	pkg  *lintPkg
	decl *ast.FuncDecl
}

// callEdge is one static call site.
type callEdge struct {
	callee *types.Func
	pos    token.Pos
}

// buildCallGraph indexes every function declaration and static call edge in
// pkgs (the loaded closure).
func buildCallGraph(l *loader, pkgs []*lintPkg) *callGraph {
	g := &callGraph{
		l:        l,
		pkgs:     pkgs,
		decls:    make(map[*types.Func]*declSite),
		calls:    make(map[*types.Func][]callEdge),
		impls:    make(map[*types.Func][]*types.Func),
		carriers: make(map[*types.Named]bool),
	}
	for _, p := range pkgs {
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.decls[fn] = &declSite{pkg: p, decl: fd}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := calleeFunc(p.info, call); callee != nil {
						g.calls[fn] = append(g.calls[fn], callEdge{callee: callee, pos: call.Pos()})
					}
					return true
				})
			}
		}
	}
	g.buildImpls()
	return g
}

// buildImpls maps every method of every module-declared interface to the
// module-declared concrete methods implementing it.
func (g *callGraph) buildImpls() {
	var ifaces []*types.Named
	var concretes []*types.Named
	for _, p := range g.pkgs {
		scope := p.pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				if named.Underlying().(*types.Interface).NumMethods() > 0 {
					ifaces = append(ifaces, named)
				}
			} else {
				concretes = append(concretes, named)
			}
		}
	}
	for _, iface := range ifaces {
		it := iface.Underlying().(*types.Interface)
		for _, concrete := range concretes {
			impl := types.Type(concrete)
			if !types.Implements(impl, it) {
				impl = types.NewPointer(concrete)
				if !types.Implements(impl, it) {
					continue
				}
			}
			for i := 0; i < it.NumMethods(); i++ {
				m := it.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(impl, true, m.Pkg(), m.Name())
				if cm, ok := obj.(*types.Func); ok && g.decls[cm] != nil {
					g.impls[m] = append(g.impls[m], cm)
				}
			}
		}
	}
}

// reachInfo is one step of a witness path from a function to a sink.
type reachInfo struct {
	next *types.Func // the callee through which the sink is reached (nil at the sink itself)
	sink string      // description of the sink ultimately reached
}

// reverseEdges builds the reverse adjacency (callee -> callers) in
// deterministic order — callers visited in (file, line) order, their edges in
// source order — and returns the distinct call targets in first-seen order.
// With expandIfaces, a call through an interface method also links the
// caller to every module implementation of that method.
func (g *callGraph) reverseEdges(expandIfaces bool) (rev map[*types.Func][]*types.Func, targets []*types.Func) {
	rev = make(map[*types.Func][]*types.Func)
	seen := make(map[*types.Func]bool)
	addEdge := func(caller, callee *types.Func) {
		rev[callee] = append(rev[callee], caller)
		if !seen[callee] {
			seen[callee] = true
			targets = append(targets, callee)
		}
	}
	for _, caller := range g.sortedDecls() {
		for _, e := range g.calls[caller] {
			addEdge(caller, e.callee)
			if expandIfaces {
				for _, impl := range g.impls[e.callee] {
					addEdge(caller, impl)
				}
			}
		}
	}
	return rev, targets
}

// reachable computes, by reverse BFS over the call graph, the set of module
// functions from which some call path leads to a sink. matchSink classifies
// call targets; expandIfaces additionally propagates through interface
// methods to their module implementations. A non-nil stopAt blocks
// propagation through matching functions (the sinks themselves are never
// blocked): the function still appears in the result, but its callers are
// not implicated through it. The result maps each reaching function to a
// witness step, so findings can print the call chain. Traversal order is
// deterministic, so witness chains are stable run to run.
func (g *callGraph) reachable(matchSink func(*types.Func) string, expandIfaces bool, stopAt func(*types.Func) bool) map[*types.Func]reachInfo {
	rev, targets := g.reverseEdges(expandIfaces)
	reach := make(map[*types.Func]reachInfo)
	sinks := make(map[*types.Func]bool)
	var frontier []*types.Func
	// Seed: every call target (concrete or abstract) matching a sink.
	for _, callee := range targets {
		if desc := matchSink(callee); desc != "" {
			reach[callee] = reachInfo{sink: desc}
			sinks[callee] = true
			frontier = append(frontier, callee)
		}
	}
	for len(frontier) > 0 {
		next := frontier[:0:0]
		for _, fn := range frontier {
			if stopAt != nil && !sinks[fn] && stopAt(fn) {
				continue
			}
			info := reach[fn]
			for _, caller := range rev[fn] {
				if _, ok := reach[caller]; ok {
					continue
				}
				reach[caller] = reachInfo{next: fn, sink: info.sink}
				next = append(next, caller)
			}
		}
		frontier = next
	}
	return reach
}

// witnessChain renders the call path recorded by reachable, e.g.
// "Top -> mid.Step -> (*Pool).Run".
func (g *callGraph) witnessChain(fn *types.Func, reach map[*types.Func]reachInfo, max int) string {
	var parts []string
	cur := fn
	for i := 0; i < max; i++ {
		parts = append(parts, g.funcID(cur))
		info, ok := reach[cur]
		if !ok || info.next == nil {
			break
		}
		cur = info.next
	}
	return strings.Join(parts, " -> ")
}

// funcID renders a stable, human-readable identity for a function:
// "internal/cqeval.(*varRel).addAll", "internal/par.Map", or — for
// non-module functions — the full package path ("time.Now").
func (g *callGraph) funcID(fn *types.Func) string {
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	if rel := g.l.relOf(pkgPath); rel != "" {
		pkgPath = rel
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		name = fmt.Sprintf("(%s).%s", typeShortName(sig.Recv().Type()), fn.Name())
	}
	if pkgPath == "" || pkgPath == "." {
		return name
	}
	return pkgPath + "." + name
}

// typeShortName renders a receiver type without its package qualifier:
// "*varRel", "Meter".
func typeShortName(t types.Type) string {
	ptr := ""
	if p, ok := t.(*types.Pointer); ok {
		ptr = "*"
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return ptr + named.Obj().Name()
	}
	return ptr + t.String()
}

// fnMatches reports whether fn is the function relPkg.name (package-level
// when recv is "", otherwise a method on the named receiver type). relPkg
// is a module-relative path ("internal/par") or a full non-module import
// path ("net/http").
func (g *callGraph) fnMatches(fn *types.Func, relPkg, recv, name string) bool {
	if fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	pkgPath := fn.Pkg().Path()
	if rel := g.l.relOf(pkgPath); rel != "" {
		pkgPath = rel
	}
	if pkgPath != relPkg {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv == "" {
		return sig.Recv() == nil
	}
	if sig.Recv() == nil {
		return false
	}
	return strings.TrimPrefix(typeShortName(sig.Recv().Type()), "*") == recv
}

// ---------------------------------------------------------------------------
// Cancellation carriers (R10's "threads a context" predicate).

// carriesCancellation reports whether fn can thread cancellation to its
// callees: some parameter or receiver is a context.Context, a *guard.Meter,
// a *par.Pool, a struct carrying one of those in a field (one level deep),
// or a module interface implemented by a carrying module type (the
// cqeval.Engine/WithMeter convention).
func (g *callGraph) carriesCancellation(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil && g.typeCarries(recv.Type(), 2) {
		return true
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if g.typeCarries(params.At(i).Type(), 2) {
			return true
		}
	}
	return false
}

// typeCarries reports whether a value of type t can carry cancellation.
// depth bounds the struct-field recursion.
func (g *callGraph) typeCarries(t types.Type, depth int) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() != nil {
		pkgPath := obj.Pkg().Path()
		if pkgPath == "context" && obj.Name() == "Context" {
			return true
		}
		rel := g.l.relOf(pkgPath)
		if rel == "internal/guard" && obj.Name() == "Meter" {
			return true
		}
		if rel == "internal/par" && obj.Name() == "Pool" {
			return true
		}
		if rel == "" {
			return false // other non-module types never carry
		}
	}
	if cached, ok := g.carriers[named]; ok {
		return cached
	}
	if depth <= 0 {
		return false
	}
	g.carriers[named] = false // cycle guard
	carries := false
	switch u := named.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if g.typeCarries(u.Field(i).Type(), depth-1) {
				carries = true
				break
			}
		}
	case *types.Interface:
		// A module interface carries when some module implementation does
		// (the engines carry their meter behind cqeval.Engine).
		for _, p := range g.pkgs {
			scope := p.pkg.Scope()
			for _, name := range scope.Names() {
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok || tn.IsAlias() {
					continue
				}
				impl, ok := tn.Type().(*types.Named)
				if !ok || types.IsInterface(impl) {
					continue
				}
				if !types.Implements(impl, u) && !types.Implements(types.NewPointer(impl), u) {
					continue
				}
				if g.typeCarries(impl, depth-1) {
					carries = true
					break
				}
			}
			if carries {
				break
			}
		}
	}
	g.carriers[named] = carries
	return carries
}

// isDeprecated reports whether the declaration carries a "Deprecated:"
// marker — frozen legacy wrappers are exempt from the whole-program rules.
func isDeprecated(fd *ast.FuncDecl) bool {
	return fd.Doc != nil && strings.Contains(fd.Doc.Text(), "Deprecated:")
}

// sortedDecls returns the graph's declared functions in deterministic
// (file, line) order, so rule findings come out stably ordered.
func (g *callGraph) sortedDecls() []*types.Func {
	fns := make([]*types.Func, 0, len(g.decls))
	for fn := range g.decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool {
		pi := g.l.fset.Position(fns[i].Pos())
		pj := g.l.fset.Position(fns[j].Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Line < pj.Line
	})
	return fns
}
