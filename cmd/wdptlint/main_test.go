package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// The fixture module under testdata/lintmod contains one package per rule,
// each with violations, exempt idioms, and suppression cases. Expected
// findings are declared in the fixtures themselves with trailing markers:
//
//	out = append(out, v) // want R1
//
// The marker lists every rule expected to fire on that line.
const fixtureDir = "testdata/lintmod"

// readMarkers collects the expected findings from the fixture sources as
// "file:line:rule" keys (file paths relative to the fixture module root).
func readMarkers(t *testing.T) map[string]int {
	t.Helper()
	want := make(map[string]int)
	err := filepath.WalkDir(fixtureDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(fixtureDir, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		for i, line := range strings.Split(string(data), "\n") {
			_, marker, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			for _, rule := range strings.Fields(marker) {
				want[fmt.Sprintf("%s:%d:%s", rel, i+1, rule)]++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("reading markers: %v", err)
	}
	for k, n := range manifestMarkers(t, fixtureDir) {
		want[k] += n
	}
	return want
}

// manifestMarkers collects the expected R13 manifest findings: lines of the
// fixture .wdptlint-meterage carrying "(want R13)" in their text — the stale
// and malformed entries the ratchet must report at those manifest lines.
func manifestMarkers(t *testing.T, dir string) map[string]int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, ".wdptlint-meterage"))
	if err != nil {
		t.Fatalf("reading manifest: %v", err)
	}
	want := make(map[string]int)
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, "(want R13)") {
			want[fmt.Sprintf(".wdptlint-meterage:%d:R13", i+1)]++
		}
	}
	return want
}

func findingKeys(findings []Finding) map[string]int {
	got := make(map[string]int)
	for _, f := range findings {
		got[fmt.Sprintf("%s:%d:%s", f.File, f.Line, f.Rule)]++
	}
	return got
}

func diffKeys(t *testing.T, want, got map[string]int) {
	t.Helper()
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if want[k] != got[k] {
			t.Errorf("finding %s: want %d, got %d", k, want[k], got[k])
		}
	}
}

// TestFixtureFindings runs every rule over the fixture module and checks the
// findings against the // want markers: each rule fires where expected, the
// exempt idioms stay silent, and every suppression case is honored.
func TestFixtureFindings(t *testing.T) {
	enabled, err := parseRules("")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Lint(fixtureDir, []string{"./..."}, enabled)
	if err != nil {
		t.Fatal(err)
	}
	diffKeys(t, readMarkers(t), findingKeys(findings))
}

// TestRuleSubset checks that -rules style filtering runs only the selected
// rules.
func TestRuleSubset(t *testing.T) {
	enabled, err := parseRules("R2")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Lint(fixtureDir, []string{"./..."}, enabled)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]int)
	for k, n := range readMarkers(t) {
		if strings.HasSuffix(k, ":R2") {
			want[k] = n
		}
	}
	diffKeys(t, want, findingKeys(findings))
}

// TestSinglePackagePattern checks non-recursive package patterns.
func TestSinglePackagePattern(t *testing.T) {
	enabled, err := parseRules("")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Lint(fixtureDir, []string{"./internal/r4"}, enabled)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]int)
	for k, n := range readMarkers(t) {
		if strings.HasPrefix(k, "internal/r4/") {
			want[k] = n
		}
	}
	diffKeys(t, want, findingKeys(findings))
}

func TestParseRules(t *testing.T) {
	all, err := parseRules("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(allRules) {
		t.Fatalf("parseRules(\"\") enabled %d rules, want %d", len(all), len(allRules))
	}
	subset, err := parseRules("R1, R5")
	if err != nil {
		t.Fatal(err)
	}
	if !subset["R1"] || !subset["R5"] || subset["R2"] {
		t.Fatalf("parseRules(\"R1, R5\") = %v", subset)
	}
	if _, err := parseRules("R99"); err == nil {
		t.Fatal("parseRules(\"R99\") should fail")
	}
}

// TestFindingsSorted checks the report order: file, then line, then rule.
func TestFindingsSorted(t *testing.T) {
	enabled, err := parseRules("")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Lint(fixtureDir, []string{"./..."}, enabled)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Rule < b.Rule
	}) {
		t.Errorf("findings not sorted: %v", findings)
	}
}

// TestRunExitCodes drives the CLI entry point: findings mean exit 1 with one
// "file:line: [rule] message" line per finding, a clean tree means exit 0,
// and bad flags mean exit 2.
func TestRunExitCodes(t *testing.T) {
	t.Chdir(fixtureDir)
	var stdout, stderr bytes.Buffer

	if code := run([]string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("run(./...) = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	// The stderr timing line is the gate's evidence that the parallel loader
	// ran (CI greps for it).
	if !strings.Contains(stderr.String(), "loaded ") || !strings.Contains(stderr.String(), "parallelism ") {
		t.Errorf("stderr missing the loader timing line: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing the findings summary line: %s", stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	want := 0
	for _, n := range readMarkersFrom(t, ".") {
		want += n
	}
	if len(lines) != want {
		t.Fatalf("run printed %d findings, want %d:\n%s", len(lines), want, stdout.String())
	}
	for _, line := range lines {
		if !strings.Contains(line, ": [R") {
			t.Errorf("malformed finding line %q", line)
		}
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"./cmd/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(./cmd/...) = %d, want 0 (stdout: %s)", code, stdout.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("clean run printed findings: %s", stdout.String())
	}

	if code := run([]string{"-rules", "R99"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-rules R99) = %d, want 2", code)
	}
}

// readMarkersFrom is readMarkers with an explicit root, for tests that chdir.
func readMarkersFrom(t *testing.T, dir string) map[string]int {
	t.Helper()
	want := make(map[string]int)
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, marker, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			for _, rule := range strings.Fields(marker) {
				want[fmt.Sprintf("%s:%d:%s", path, i+1, rule)]++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("reading markers: %v", err)
	}
	for k, n := range manifestMarkers(t, dir) {
		want[k] += n
	}
	return want
}

// TestListRules checks -list: one line per implemented rule, in order.
func TestListRules(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, want 0", code)
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != len(allRules) {
		t.Fatalf("-list printed %d lines, want %d:\n%s", len(lines), len(allRules), stdout.String())
	}
	for i, r := range allRules {
		if !strings.HasPrefix(lines[i], r.id) {
			t.Errorf("-list line %d = %q, want prefix %q", i, lines[i], r.id)
		}
	}
}

// TestJSONFindings checks -json: stdout is a JSON array holding exactly the
// marker findings, machine-readable for CI annotation.
func TestJSONFindings(t *testing.T) {
	t.Chdir(fixtureDir)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("run(-json ./...) = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	var findings []Finding
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a findings array: %v\n%s", err, stdout.String())
	}
	diffKeys(t, readMarkersFrom(t, "."), findingKeys(findings))
}

// TestBaselineRoundTrip exercises the baseline matcher directly: write/read
// round-trips, grandfathering ignores line drift, matching is a multiset,
// and fixed findings surface as stale entries.
func TestBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		{File: "a.go", Line: 3, Rule: "R1", Msg: "m"},
		{File: "a.go", Line: 9, Rule: "R1", Msg: "m"}, // duplicate key: multiset budget of 2
		{File: "b.go", Line: 1, Rule: "R2", Msg: "n"},
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := writeBaselineFile(path, findings); err != nil {
		t.Fatal(err)
	}
	base, err := readBaselineFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(findings) {
		t.Fatalf("round-trip: %d entries, want %d", len(base), len(findings))
	}

	if fresh, stale := applyBaseline(findings, base); len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("identical findings: fresh=%v stale=%v, want none", fresh, stale)
	}
	// Line drift must not break the match: entries match on (file, rule, msg).
	moved := []Finding{
		{File: "a.go", Line: 30, Rule: "R1", Msg: "m"},
		{File: "a.go", Line: 90, Rule: "R1", Msg: "m"},
		{File: "b.go", Line: 5, Rule: "R2", Msg: "n"},
	}
	if fresh, stale := applyBaseline(moved, base); len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("line drift: fresh=%v stale=%v, want none", fresh, stale)
	}
	// A third occurrence of a key budgeted twice is fresh.
	extra := append(moved[:len(moved):len(moved)], Finding{File: "a.go", Line: 99, Rule: "R1", Msg: "m"})
	if fresh, _ := applyBaseline(extra, base); len(fresh) != 1 || fresh[0].Line != 99 {
		t.Errorf("multiset overflow: fresh=%v, want the one extra occurrence", fresh)
	}
	// A brand-new finding is fresh.
	novel := append(moved[:len(moved):len(moved)], Finding{File: "c.go", Line: 2, Rule: "R3", Msg: "x"})
	if fresh, stale := applyBaseline(novel, base); len(fresh) != 1 || fresh[0].File != "c.go" || len(stale) != 0 {
		t.Errorf("new finding: fresh=%v stale=%v, want just c.go", fresh, stale)
	}
	// A fixed finding leaves its baseline entry stale — the ratchet.
	if fresh, stale := applyBaseline(moved[:2], base); len(fresh) != 0 || len(stale) != 1 || stale[0].File != "b.go" {
		t.Errorf("fixed finding: fresh=%v stale=%v, want one stale b.go entry", fresh, stale)
	}

	// A missing baseline file is an empty baseline, not an error.
	if entries, err := readBaselineFile(filepath.Join(t.TempDir(), "absent.json")); err != nil || entries != nil {
		t.Errorf("missing baseline: entries=%v err=%v, want nil/nil", entries, err)
	}
}

// TestBaselineRatchet drives the CLI ratchet end to end: record a baseline,
// verify the same tree is green against it, then verify both failure modes —
// stale entries (findings fixed but still listed) and fresh findings (new
// debt the baseline does not cover).
func TestBaselineRatchet(t *testing.T) {
	t.Chdir(fixtureDir)
	full := filepath.Join(t.TempDir(), "full.json")
	subset := filepath.Join(t.TempDir(), "subset.json")
	var stdout, stderr bytes.Buffer

	if code := run([]string{"-baseline", full, "-write-baseline", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("write-baseline = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", full, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("grandfathered run = %d, want 0 (stdout: %s stderr: %s)", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("grandfathered run printed findings:\n%s", stdout.String())
	}

	// Ratchet: with only R2 firing, every non-R2 baseline entry is stale.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-rules", "R2", "-baseline", full, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("stale-baseline run = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "stale baseline entry") {
		t.Errorf("stale run stderr missing stale-entry report: %s", stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("stale run printed fresh findings:\n%s", stdout.String())
	}

	// New debt: a baseline recorded under R2 only does not grandfather the
	// other rules' findings.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-rules", "R2", "-baseline", subset, "-write-baseline", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("subset write-baseline = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", subset, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("fresh-findings run = %d, want 1", code)
	}
	if !strings.Contains(stdout.String(), "[R1]") {
		t.Errorf("fresh-findings run should report non-R2 findings:\n%s", stdout.String())
	}
	if strings.Contains(stdout.String(), "[R2]") {
		t.Errorf("fresh-findings run should grandfather the R2 findings:\n%s", stdout.String())
	}
}

// TestSelfHost lints the linter's own package with every rule enabled:
// wdptlint must hold itself to the standard it enforces.
func TestSelfHost(t *testing.T) {
	if testing.Short() {
		t.Skip("self-hosting lint type-checks the real module closure")
	}
	enabled, err := parseRules("")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Lint(".", []string{"./cmd/wdptlint"}, enabled)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("self-hosting finding: %s", f)
	}
}
