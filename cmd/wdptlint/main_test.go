package main

import (
	"bytes"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// The fixture module under testdata/lintmod contains one package per rule,
// each with violations, exempt idioms, and suppression cases. Expected
// findings are declared in the fixtures themselves with trailing markers:
//
//	out = append(out, v) // want R1
//
// The marker lists every rule expected to fire on that line.
const fixtureDir = "testdata/lintmod"

// readMarkers collects the expected findings from the fixture sources as
// "file:line:rule" keys (file paths relative to the fixture module root).
func readMarkers(t *testing.T) map[string]int {
	t.Helper()
	want := make(map[string]int)
	err := filepath.WalkDir(fixtureDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(fixtureDir, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		for i, line := range strings.Split(string(data), "\n") {
			_, marker, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			for _, rule := range strings.Fields(marker) {
				want[fmt.Sprintf("%s:%d:%s", rel, i+1, rule)]++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("reading markers: %v", err)
	}
	return want
}

func findingKeys(findings []Finding) map[string]int {
	got := make(map[string]int)
	for _, f := range findings {
		got[fmt.Sprintf("%s:%d:%s", f.File, f.Line, f.Rule)]++
	}
	return got
}

func diffKeys(t *testing.T, want, got map[string]int) {
	t.Helper()
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if want[k] != got[k] {
			t.Errorf("finding %s: want %d, got %d", k, want[k], got[k])
		}
	}
}

// TestFixtureFindings runs every rule over the fixture module and checks the
// findings against the // want markers: each rule fires where expected, the
// exempt idioms stay silent, and every suppression case is honored.
func TestFixtureFindings(t *testing.T) {
	enabled, err := parseRules("")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Lint(fixtureDir, []string{"./..."}, enabled)
	if err != nil {
		t.Fatal(err)
	}
	diffKeys(t, readMarkers(t), findingKeys(findings))
}

// TestRuleSubset checks that -rules style filtering runs only the selected
// rules.
func TestRuleSubset(t *testing.T) {
	enabled, err := parseRules("R2")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Lint(fixtureDir, []string{"./..."}, enabled)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]int)
	for k, n := range readMarkers(t) {
		if strings.HasSuffix(k, ":R2") {
			want[k] = n
		}
	}
	diffKeys(t, want, findingKeys(findings))
}

// TestSinglePackagePattern checks non-recursive package patterns.
func TestSinglePackagePattern(t *testing.T) {
	enabled, err := parseRules("")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Lint(fixtureDir, []string{"./internal/r4"}, enabled)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]int)
	for k, n := range readMarkers(t) {
		if strings.HasPrefix(k, "internal/r4/") {
			want[k] = n
		}
	}
	diffKeys(t, want, findingKeys(findings))
}

func TestParseRules(t *testing.T) {
	all, err := parseRules("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(allRules) {
		t.Fatalf("parseRules(\"\") enabled %d rules, want %d", len(all), len(allRules))
	}
	subset, err := parseRules("R1, R5")
	if err != nil {
		t.Fatal(err)
	}
	if !subset["R1"] || !subset["R5"] || subset["R2"] {
		t.Fatalf("parseRules(\"R1, R5\") = %v", subset)
	}
	if _, err := parseRules("R99"); err == nil {
		t.Fatal("parseRules(\"R99\") should fail")
	}
}

// TestFindingsSorted checks the report order: file, then line, then rule.
func TestFindingsSorted(t *testing.T) {
	enabled, err := parseRules("")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Lint(fixtureDir, []string{"./..."}, enabled)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Rule < b.Rule
	}) {
		t.Errorf("findings not sorted: %v", findings)
	}
}

// TestRunExitCodes drives the CLI entry point: findings mean exit 1 with one
// "file:line: [rule] message" line per finding, a clean tree means exit 0,
// and bad flags mean exit 2.
func TestRunExitCodes(t *testing.T) {
	t.Chdir(fixtureDir)
	var stdout, stderr bytes.Buffer

	if code := run([]string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("run(./...) = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	want := 0
	for _, n := range readMarkersFrom(t, ".") {
		want += n
	}
	if len(lines) != want {
		t.Fatalf("run printed %d findings, want %d:\n%s", len(lines), want, stdout.String())
	}
	for _, line := range lines {
		if !strings.Contains(line, ": [R") {
			t.Errorf("malformed finding line %q", line)
		}
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"./cmd/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(./cmd/...) = %d, want 0 (stdout: %s)", code, stdout.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("clean run printed findings: %s", stdout.String())
	}

	if code := run([]string{"-rules", "R99"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-rules R99) = %d, want 2", code)
	}
}

// readMarkersFrom is readMarkers with an explicit root, for tests that chdir.
func readMarkersFrom(t *testing.T, dir string) map[string]int {
	t.Helper()
	want := make(map[string]int)
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, marker, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			for _, rule := range strings.Fields(marker) {
				want[fmt.Sprintf("%s:%d:%s", path, i+1, rule)]++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("reading markers: %v", err)
	}
	return want
}
