package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// loader parses and type-checks the packages of one module. Packages of the
// module itself are loaded from source; everything else (the standard
// library) is resolved through go/importer's source importer, so the tool
// needs no compiled export data and no external dependencies.
//
// Loading is a three-phase pipeline sized for the whole-program rules:
//
//  1. parse — the selected packages and their transitive module imports are
//     parsed concurrently (one worker per package, bounded by GOMAXPROCS);
//  2. type-check — packages are checked level by level in dependency order,
//     packages of the same level concurrently; the shared standard-library
//     importer is serialized behind a mutex, module dependencies are
//     guaranteed checked by the level ordering;
//  3. lint — per-package rules fan out again (see Lint), and the
//     whole-program rules run once over the full type-resolved closure.
type loader struct {
	fset    *token.FileSet
	root    string // absolute module root directory
	modPath string // module path from go.mod

	std   types.Importer
	stdMu sync.Mutex // serializes the (not concurrency-safe) std importer

	mu     sync.Mutex
	parsed map[string]*lintPkg // import path -> parsed (phase 1) package

	// suppress is the global //lint:ignore index: file (module-relative
	// slash path) -> line -> rules suppressed on that line. It is built
	// during parsing so whole-program findings are suppressible exactly
	// like per-file ones.
	suppress map[string]map[int][]string

	timing LoadTiming
}

// LoadTiming records the loader pipeline's wall-clock profile; run() prints
// it so CI can assert the parallel loader is active and the gate's lint
// step stays bounded.
type LoadTiming struct {
	Packages    int
	Parallelism int
	Parse       time.Duration
	Check       time.Duration
}

func (t LoadTiming) String() string {
	return fmt.Sprintf("loaded %d packages in %v (parse %v + typecheck %v, parallelism %d)",
		t.Packages, (t.Parse + t.Check).Round(time.Millisecond),
		t.Parse.Round(time.Millisecond), t.Check.Round(time.Millisecond), t.Parallelism)
}

// lintPkg is one parsed, type-checked package of the module.
type lintPkg struct {
	path    string // import path ("wdpt/internal/cq")
	rel     string // slash path relative to the module root ("." for the root)
	files   []*ast.File
	imports []string // module-internal imports (import paths)
	pkg     *types.Package
	info    *types.Info
}

func newLoader(dir string) (*loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := moduleName(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &loader{
		fset:     fset,
		root:     root,
		modPath:  modPath,
		std:      importer.ForCompiler(fset, "source", nil),
		parsed:   make(map[string]*lintPkg),
		suppress: make(map[string]map[int][]string),
	}, nil
}

func moduleName(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			name := strings.TrimSpace(rest)
			if name != "" {
				return name, nil
			}
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// relOf maps a package import path to its module-relative slash path, or ""
// when the package is not part of the module (standard library).
func (l *loader) relOf(path string) string {
	if path == l.modPath {
		return "."
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return rest
	}
	return ""
}

// load resolves the patterns ("./...", "./cmd/wdpteval", ...) to package
// directories and loads each plus its transitive module dependencies,
// returning the selected packages sorted by import path. The full checked
// closure (for the whole-program rules) is available via closure().
func (l *loader) load(patterns []string) ([]*lintPkg, error) {
	selected, err := l.resolvePatterns(patterns)
	if err != nil {
		return nil, err
	}
	l.timing.Parallelism = runtime.GOMAXPROCS(0)

	start := time.Now()
	if err := l.parseAll(selected); err != nil {
		return nil, err
	}
	l.timing.Parse = time.Since(start)

	levels, err := l.depLevels()
	if err != nil {
		return nil, err
	}
	start = time.Now()
	if err := l.checkAll(levels); err != nil {
		return nil, err
	}
	l.timing.Check = time.Since(start)
	l.timing.Packages = len(l.parsed)

	pkgs := make([]*lintPkg, 0, len(selected))
	for _, path := range selected {
		pkgs = append(pkgs, l.parsed[path])
	}
	return pkgs, nil
}

// closure returns every loaded module package (the selected ones plus their
// transitive module dependencies), sorted by import path. The whole-program
// rules build their call graph over this set.
func (l *loader) closure() []*lintPkg {
	paths := make([]string, 0, len(l.parsed))
	for path := range l.parsed {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	pkgs := make([]*lintPkg, 0, len(paths))
	for _, path := range paths {
		pkgs = append(pkgs, l.parsed[path])
	}
	return pkgs
}

// resolvePatterns expands the command-line patterns to sorted module import
// paths.
func (l *loader) resolvePatterns(patterns []string) ([]string, error) {
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			dirs[base] = true
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				dirs[path] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	paths := make([]string, 0, len(dirs))
	for dir := range dirs {
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return nil, err
		}
		rel = filepath.ToSlash(rel)
		if rel == "." {
			paths = append(paths, l.modPath)
		} else {
			paths = append(paths, l.modPath+"/"+rel)
		}
	}
	sort.Strings(paths)
	return paths, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// parseAll parses roots and their transitive module imports, fanning each
// wave of newly discovered packages out over worker goroutines.
func (l *loader) parseAll(roots []string) error {
	frontier := append([]string(nil), roots...)
	seen := make(map[string]bool, len(roots))
	for _, p := range roots {
		seen[p] = true
	}
	for len(frontier) > 0 {
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			firstErr error
			next     []string
		)
		workers := l.timing.Parallelism
		if workers > len(frontier) {
			workers = len(frontier)
		}
		queue := make(chan string, len(frontier))
		for _, path := range frontier {
			queue <- path
		}
		close(queue)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for path := range queue {
					p, err := l.parsePackage(path)
					mu.Lock()
					if err != nil {
						if firstErr == nil {
							firstErr = err
						}
					} else {
						for _, imp := range p.imports {
							if !seen[imp] {
								seen[imp] = true
								next = append(next, imp)
							}
						}
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return firstErr
		}
		sort.Strings(next)
		frontier = next
	}
	return nil
}

// parsePackage parses one module package (non-test files only), records its
// module-internal imports, and indexes its //lint:ignore directives.
func (l *loader) parsePackage(path string) (*lintPkg, error) {
	rel := l.relOf(path)
	if rel == "" {
		return nil, fmt.Errorf("package %s is outside module %s", path, l.modPath)
	}
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	p := &lintPkg{path: path, rel: rel, files: files}
	for _, f := range files {
		for _, imp := range f.Imports {
			ipath, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if l.relOf(ipath) != "" {
				p.imports = append(p.imports, ipath)
			}
		}
	}
	sort.Strings(p.imports)
	l.mu.Lock()
	l.parsed[path] = p
	for _, f := range files {
		l.indexSuppressionsLocked(f)
	}
	l.mu.Unlock()
	return p, nil
}

// depLevels topologically orders the parsed packages by module-internal
// imports and groups them into levels: every package's module dependencies
// live in strictly earlier levels, so packages within a level type-check
// independently.
func (l *loader) depLevels() ([][]*lintPkg, error) {
	depth := make(map[string]int, len(l.parsed))
	var visit func(path string, trail []string) (int, error)
	visit = func(path string, trail []string) (int, error) {
		if d, ok := depth[path]; ok {
			if d == -1 {
				return 0, fmt.Errorf("import cycle through %s", strings.Join(append(trail, path), " -> "))
			}
			return d, nil
		}
		depth[path] = -1 // in progress
		max := 0
		for _, imp := range l.parsed[path].imports {
			d, err := visit(imp, append(trail, path))
			if err != nil {
				return 0, err
			}
			if d+1 > max {
				max = d + 1
			}
		}
		depth[path] = max
		return max, nil
	}
	paths := make([]string, 0, len(l.parsed))
	for path := range l.parsed {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	maxDepth := 0
	for _, path := range paths {
		d, err := visit(path, nil)
		if err != nil {
			return nil, err
		}
		if d > maxDepth {
			maxDepth = d
		}
	}
	levels := make([][]*lintPkg, maxDepth+1)
	for _, path := range paths {
		d := depth[path]
		levels[d] = append(levels[d], l.parsed[path])
	}
	return levels, nil
}

// checkAll type-checks the parsed packages level by level, packages within
// a level concurrently.
func (l *loader) checkAll(levels [][]*lintPkg) error {
	for _, level := range levels {
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			firstErr error
		)
		for _, p := range level {
			wg.Add(1)
			go func(p *lintPkg) {
				defer wg.Done()
				if err := l.checkPackage(p); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}(p)
		}
		wg.Wait()
		if firstErr != nil {
			return firstErr
		}
	}
	return nil
}

func (l *loader) checkPackage(p *lintPkg) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(p.path, l.fset, p.files, info)
	if len(typeErrs) > 0 {
		return fmt.Errorf("type-checking %s: %v", p.path, typeErrs[0])
	}
	p.pkg = pkg
	p.info = info
	return nil
}

// loaderImporter adapts the loader to types.Importer: module packages come
// from the checked-package table (the level ordering guarantees they are
// ready), everything else goes to the mutex-serialized standard-library
// importer.
type loaderImporter loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*loader)(li)
	if l.relOf(path) != "" {
		l.mu.Lock()
		p := l.parsed[path]
		l.mu.Unlock()
		if p == nil || p.pkg == nil {
			return nil, fmt.Errorf("module package %s not checked before its importer (dependency-order bug)", path)
		}
		return p.pkg, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}
