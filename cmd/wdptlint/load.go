package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// loader parses and type-checks the packages of one module. Packages of the
// module itself are loaded from source; everything else (the standard
// library) is resolved through go/importer's source importer, so the tool
// needs no compiled export data and no external dependencies.
type loader struct {
	fset    *token.FileSet
	root    string // absolute module root directory
	modPath string // module path from go.mod
	std     types.Importer
	cache   map[string]*lintPkg
	loading map[string]bool // import-cycle guard
}

// lintPkg is one parsed, type-checked package of the module.
type lintPkg struct {
	path  string // import path ("wdpt/internal/cq")
	rel   string // slash path relative to the module root ("." for the root)
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

func newLoader(dir string) (*loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := moduleName(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   make(map[string]*lintPkg),
		loading: make(map[string]bool),
	}, nil
}

func moduleName(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			name := strings.TrimSpace(rest)
			if name != "" {
				return name, nil
			}
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// load resolves the patterns ("./...", "./cmd/wdpteval", ...) to package
// directories and loads each, returning them sorted by import path.
func (l *loader) load(patterns []string) ([]*lintPkg, error) {
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			dirs[base] = true
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				dirs[path] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	paths := make([]string, 0, len(dirs))
	for dir := range dirs {
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return nil, err
		}
		rel = filepath.ToSlash(rel)
		if rel == "." {
			paths = append(paths, l.modPath)
		} else {
			paths = append(paths, l.modPath+"/"+rel)
		}
	}
	sort.Strings(paths)
	pkgs := make([]*lintPkg, 0, len(paths))
	for _, path := range paths {
		p, err := l.loadPackage(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// loadPackage parses and type-checks one module package (non-test files
// only), loading its module dependencies recursively through the importer.
func (l *loader) loadPackage(path string) (*lintPkg, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := "."
	if path != l.modPath {
		rel = strings.TrimPrefix(path, l.modPath+"/")
	}
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, typeErrs[0])
	}
	p := &lintPkg{path: path, rel: rel, files: files, pkg: pkg, info: info}
	l.cache[path] = p
	return p, nil
}

// loaderImporter adapts the loader to types.Importer: module packages are
// loaded from source, everything else goes to the standard-library importer.
type loaderImporter loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*loader)(li)
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.loadPackage(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.std.Import(path)
}
