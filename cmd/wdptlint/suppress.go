package main

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// A finding is suppressed by a directive comment either trailing the flagged
// line or on the line immediately above it:
//
//	//lint:ignore R1 iteration order is irrelevant: results feed a set
//
// The directive names one rule or a comma-separated list of rules and must
// give a non-empty reason; a directive without a reason suppresses nothing.
//
// Directives are indexed globally at parse time (loader.suppress), so the
// whole-program rules — whose findings are produced far from any single
// file walk — honor them exactly like the per-file rules do.

const ignorePrefix = "//lint:ignore "

// indexSuppressionsLocked records f's lint:ignore directives in the global
// index. Called with l.mu held (from parsePackage).
func (l *loader) indexSuppressionsLocked(f *ast.File) {
	for _, group := range f.Comments {
		for _, c := range group.List {
			rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				continue // no reason given: directive is inert
			}
			position := l.fset.Position(c.Pos())
			file := position.Filename
			if rel, err := filepath.Rel(l.root, file); err == nil {
				file = filepath.ToSlash(rel)
			}
			byLine := l.suppress[file]
			if byLine == nil {
				byLine = make(map[int][]string)
				l.suppress[file] = byLine
			}
			byLine[position.Line] = append(byLine[position.Line], strings.Split(fields[0], ",")...)
		}
	}
}

// suppressed reports whether a finding for rule at file:line is covered by
// a directive on that line or the line above.
func (l *loader) suppressed(file string, line int, rule string) bool {
	byLine := l.suppress[file]
	if byLine == nil {
		return false
	}
	for _, at := range []int{line, line - 1} {
		for _, r := range byLine[at] {
			if r == rule {
				return true
			}
		}
	}
	return false
}

// applySuppressions drops the findings covered by a lint:ignore directive.
func (l *loader) applySuppressions(findings []Finding) []Finding {
	out := findings[:0]
	for _, fd := range findings {
		if l.suppressed(fd.File, fd.Line, fd.Rule) {
			continue
		}
		out = append(out, fd)
	}
	return out
}
