package main

import (
	"go/ast"
	"strings"
)

// A finding is suppressed by a directive comment either trailing the flagged
// line or on the line immediately above it:
//
//	//lint:ignore R1 iteration order is irrelevant: results feed a set
//
// The directive names one rule or a comma-separated list of rules and must
// give a non-empty reason; a directive without a reason suppresses nothing.

const ignorePrefix = "//lint:ignore "

// applySuppressions drops the findings covered by a lint:ignore directive in
// the file they were reported in.
func applySuppressions(l *loader, f *ast.File, findings []Finding) []Finding {
	if len(findings) == 0 {
		return nil
	}
	byLine := make(map[int][]string) // line -> rules suppressed on that line
	for _, group := range f.Comments {
		for _, c := range group.List {
			rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				continue // no reason given: directive is inert
			}
			line := l.fset.Position(c.Pos()).Line
			byLine[line] = append(byLine[line], strings.Split(fields[0], ",")...)
		}
	}
	if len(byLine) == 0 {
		return findings
	}
	matches := func(line int, rule string) bool {
		for _, r := range byLine[line] {
			if r == rule {
				return true
			}
		}
		return false
	}
	out := findings[:0]
	for _, fd := range findings {
		if matches(fd.Line, fd.Rule) || matches(fd.Line-1, fd.Rule) {
			continue
		}
		out = append(out, fd)
	}
	return out
}
