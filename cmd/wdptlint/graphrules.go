package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Whole-program rules. Unlike R1-R9, which each inspect one file at a time,
// R10-R13 run once over the full type-resolved closure and reason along the
// cross-package call graph:
//
//	R10 context propagation  — internal/* functions that transitively reach
//	    a cancellable sink must be able to thread cancellation
//	R11 goroutine hygiene    — (per-file scan, listed here for numbering;
//	    implemented in rules.go alongside the other syntactic rules)
//	R12 determinism taint    — time.Now / unseeded math/rand derived values
//	    must not flow into the answer-ordering and reporting packages
//	R13 budget-metering      — tuple loops in the evaluation kernels must
//	    charge the guard meter, audited against the meterage manifest

// lintWholeProgram runs the call-graph rules over the loaded closure and
// returns findings restricted to the selected packages.
func lintWholeProgram(l *loader, selected []*lintPkg, enabled map[string]bool) []Finding {
	if !enabled["R10"] && !enabled["R12"] && !enabled["R13"] {
		return nil
	}
	g := buildCallGraph(l, l.closure())
	selectedRel := make(map[string]bool, len(selected))
	for _, p := range selected {
		selectedRel[p.rel] = true
	}
	var out []Finding
	if enabled["R10"] {
		out = append(out, lintContextReach(g, selectedRel)...)
	}
	if enabled["R12"] {
		out = append(out, lintDeterminismTaint(g, selectedRel)...)
	}
	if enabled["R13"] {
		out = append(out, lintMeterCoverage(g, selectedRel)...)
	}
	return out
}

// ---------------------------------------------------------------------------
// R10 — context propagation (whole-program half).
//
// A budget's wall-clock limit and a caller's cancellation both travel down
// the evaluation stack as a context (or as the meter/pool values derived
// from one at the Solve boundary). A function that transitively reaches a
// cancellable sink — a worker-pool fan-out, a guard meter check, an index
// scan, an outbound HTTP call — but accepts no way to thread cancellation
// is a function whose work a budget trip cannot stop: the classic dropped
// ctx two calls above the sink. The substrate packages that *implement*
// cancellation (par, guard, db, obs) are exempt, as are frozen Deprecated
// wrappers. Propagation stops at a carrier: once some function on the path
// can thread cancellation, it is the cancellation boundary, and callers
// above it are not implicated through that path.

// r10ExemptPkgs are the cancellation substrate: they implement the sinks
// rather than consuming them.
var r10ExemptPkgs = map[string]bool{
	"internal/par":   true,
	"internal/guard": true,
	"internal/db":    true,
	"internal/obs":   true,
}

// cancellableSink classifies call targets that end a cancellation chain.
func (g *callGraph) cancellableSink(fn *types.Func) string {
	switch {
	case g.fnMatches(fn, "internal/par", "Pool", "Run"):
		return "par.(*Pool).Run"
	case g.fnMatches(fn, "internal/par", "", "Map"):
		return "par.Map"
	case g.fnMatches(fn, "internal/guard", "Meter", "ChargeTuples"),
		g.fnMatches(fn, "internal/guard", "Meter", "Checkpoint"),
		g.fnMatches(fn, "internal/guard", "Meter", "TryAnswer"):
		return "guard.(*Meter)." + fn.Name()
	case g.fnMatches(fn, "internal/db", "Relation", "Matching"),
		g.fnMatches(fn, "internal/db", "Relation", "MatchingIDs"):
		return "db.(*Relation)." + fn.Name()
	case g.fnMatches(fn, "net/http", "Client", "Do"),
		g.fnMatches(fn, "net/http", "", "Get"),
		g.fnMatches(fn, "net/http", "", "Post"),
		g.fnMatches(fn, "net/http", "", "PostForm"),
		g.fnMatches(fn, "net/http", "", "Head"):
		return "net/http." + fn.Name()
	}
	return ""
}

func lintContextReach(g *callGraph, selectedRel map[string]bool) []Finding {
	reach := g.reachable(g.cancellableSink, true, g.carriesCancellation)
	var out []Finding
	for _, fn := range g.sortedDecls() {
		site := g.decls[fn]
		if !selectedRel[site.pkg.rel] || !isInternalPkg(site.pkg.rel) || r10ExemptPkgs[site.pkg.rel] {
			continue
		}
		info, ok := reach[fn]
		if !ok {
			continue
		}
		if isDeprecated(site.decl) || g.carriesCancellation(fn) {
			continue
		}
		out = append(out, g.l.finding(site.decl.Name.Pos(), "R10",
			"%s reaches cancellable sink %s (%s) but accepts no context.Context, *guard.Meter, *par.Pool, or carrier type: a budget trip cannot stop this work",
			g.funcID(fn), info.sink, g.witnessChain(fn, reach, 6)))
	}
	return out
}

// ---------------------------------------------------------------------------
// R12 — determinism taint.
//
// The reproduction's headline claim is byte-identical enumeration, and the
// fallback ladder's transfer of the Mengel-Skritek approximation guarantees
// assumes degraded modes are deterministic too. A wall-clock reading or an
// unseeded random draw that flows — possibly through several calls — into
// internal/report (the canonical encoder behind wdpteval -json, wdptd, and
// the BENCH_*.json tables), internal/cq (MappingSet ordering), or
// internal/harness (the experiment tables) silently breaks both.
// internal/obs and internal/guard are whitelisted at their declared
// sources: timers and deadlines are measurements about the run, not values
// inside answers, and the whitelist boundary is where that distinction is
// reviewed.

// r12SinkPkgs are the determinism-sensitive packages.
var r12SinkPkgs = map[string]bool{
	"internal/report":  true,
	"internal/cq":      true,
	"internal/harness": true,
}

// r12WhitelistPkgs may call timers/rand freely and block taint propagation:
// their use of wall-clock and randomness is declared and reviewed.
var r12WhitelistPkgs = map[string]bool{
	"internal/obs":   true,
	"internal/guard": true,
}

// seededRandConstructors are the math/rand package-level functions that do
// not draw from the global (unseeded) source.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "Seed": true,
}

// taintSource classifies direct nondeterminism sources: time.Now and the
// global-source math/rand package functions. Methods on an explicit
// *rand.Rand are exempt — constructing one takes a seed, and seed plumbing
// is audited by its own test suite.
func taintSource(fn *types.Func) string {
	if fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" {
			return "time.Now"
		}
	case "math/rand", "math/rand/v2":
		if !seededRandConstructors[fn.Name()] {
			return "math/rand." + fn.Name()
		}
	}
	return ""
}

// mapOrderSourcePos reports a map-range inside fd whose iteration-ordered
// values are returned unsorted: the loop appends a range variable to a
// slice that the function returns without passing it to sort.*/slices.*.
// R1 polices this shape locally everywhere; classifying it as an R12 taint
// source additionally propagates it across package boundaries into the
// determinism-sensitive sinks.
func mapOrderSourcePos(p *lintPkg, fd *ast.FuncDecl) token.Pos {
	if fd.Body == nil {
		return token.NoPos
	}
	// Objects passed to a sort call anywhere in the function.
	sorted := make(map[types.Object]bool)
	returned := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(p.info, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if pkg := fn.Pkg().Path(); pkg == "sort" || pkg == "slices" {
				for _, arg := range n.Args {
					if id := rootIdent(arg); id != nil {
						if obj := p.info.ObjectOf(id); obj != nil {
							sorted[obj] = true
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if id := rootIdent(res); id != nil {
					if obj := p.info.ObjectOf(id); obj != nil {
						returned[obj] = true
					}
				}
			}
		}
		return true
	})
	pos := token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		loopVars := make(map[types.Object]bool)
		for _, e := range []ast.Expr{rs.Key, rs.Value} {
			if id, ok := e.(*ast.Ident); ok && id != nil {
				if obj := p.info.ObjectOf(id); obj != nil {
					loopVars[obj] = true
				}
			}
		}
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok || !isBuiltin(p.info, call.Fun, "append") || len(call.Args) < 2 {
				return true
			}
			usesLoopVar := false
			for _, arg := range call.Args[1:] {
				if id := rootIdent(arg); id != nil && loopVars[p.info.ObjectOf(id)] {
					usesLoopVar = true
				}
			}
			if !usesLoopVar {
				return true
			}
			if id := rootIdent(call.Args[0]); id != nil {
				obj := p.info.ObjectOf(id)
				if obj != nil && returned[obj] && !sorted[obj] {
					pos = rs.Pos()
				}
			}
			return true
		})
		return true
	})
	return pos
}

func lintDeterminismTaint(g *callGraph, selectedRel map[string]bool) []Finding {
	// Phase 1: direct sources — functions outside the whitelist whose body
	// calls time.Now / global math/rand, or returns unsorted map-iteration
	// order.
	sourceDesc := make(map[*types.Func]string)
	for fn, site := range g.decls {
		if r12WhitelistPkgs[site.pkg.rel] {
			continue
		}
		for _, e := range g.calls[fn] {
			if desc := taintSource(e.callee); desc != "" {
				sourceDesc[fn] = desc
				break
			}
		}
		if _, ok := sourceDesc[fn]; !ok {
			if pos := mapOrderSourcePos(site.pkg, site.decl); pos != token.NoPos {
				sourceDesc[fn] = "unsorted map iteration"
			}
		}
	}
	// Phase 2: propagate taint to callers through the call graph, stopping
	// at the whitelist boundary.
	type taintStep struct {
		next *types.Func
		desc string
	}
	tainted := make(map[*types.Func]taintStep)
	var frontier []*types.Func
	for _, fn := range g.sortedDecls() {
		if desc, ok := sourceDesc[fn]; ok {
			tainted[fn] = taintStep{desc: desc}
			frontier = append(frontier, fn)
		}
	}
	rev, _ := g.reverseEdges(false)
	for len(frontier) > 0 {
		next := frontier[:0:0]
		for _, fn := range frontier {
			step := tainted[fn]
			for _, caller := range rev[fn] {
				site := g.decls[caller]
				if site == nil || r12WhitelistPkgs[site.pkg.rel] {
					continue
				}
				if _, ok := tainted[caller]; ok {
					continue
				}
				tainted[caller] = taintStep{next: fn, desc: step.desc}
				next = append(next, caller)
			}
		}
		frontier = next
	}
	chain := func(fn *types.Func) string {
		var parts []string
		cur := fn
		for i := 0; i < 6; i++ {
			parts = append(parts, g.funcID(cur))
			step, ok := tainted[cur]
			if !ok || step.next == nil {
				break
			}
			cur = step.next
		}
		if step, ok := tainted[fn]; ok {
			parts = append(parts, step.desc)
		}
		return strings.Join(parts, " -> ")
	}
	// Phase 3: report every call edge inside a sink package whose target is
	// tainted, plus direct source calls made by sink-package functions.
	var out []Finding
	for _, fn := range g.sortedDecls() {
		site := g.decls[fn]
		if !r12SinkPkgs[site.pkg.rel] || !selectedRel[site.pkg.rel] {
			continue
		}
		for _, e := range g.calls[fn] {
			if desc := taintSource(e.callee); desc != "" {
				out = append(out, g.l.finding(e.pos, "R12",
					"%s is a nondeterminism source inside determinism-sensitive package %s: answer bytes and %s must not depend on it",
					desc, site.pkg.rel, "BENCH_*.json tables"))
				continue
			}
			if _, ok := tainted[e.callee]; ok && g.decls[e.callee] != nil {
				out = append(out, g.l.finding(e.pos, "R12",
					"call to %s carries a nondeterministic value (%s) into determinism-sensitive package %s",
					g.funcID(e.callee), chain(e.callee), site.pkg.rel))
			}
		}
		if desc, ok := sourceDesc[fn]; ok && desc == "unsorted map iteration" {
			if pos := mapOrderSourcePos(site.pkg, site.decl); pos != token.NoPos {
				out = append(out, g.l.finding(pos, "R12",
					"%s returns unsorted map-iteration order from determinism-sensitive package %s",
					g.funcID(fn), site.pkg.rel))
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// R13 — budget-metering coverage.
//
// The guard layer only bounds what the hot loops actually charge: a new
// join kernel that loops over tuples without touching the meter escapes
// every budget silently — queries the admission layer believed bounded run
// unbounded. The rule finds tuple/candidate loops (ranges and len()-bounded
// for loops over []cq.Mapping / []db.Tuple collections) in the evaluation
// kernels (internal/cqeval, internal/core) and requires the enclosing
// function to reach the guard meter through the call graph. Deliberately
// unmetered cold paths are declared — with a reason — in the meterage
// manifest, and stale manifest entries are themselves findings, so the
// exemption list can only shrink.

// meteragePath is the R13 manifest, relative to the module root. Lines:
//
//	exempt <funcID> <reason...>
const meteragePath = ".wdptlint-meterage"

// r13ScopePkgs are the evaluation-kernel packages audited for metering.
var r13ScopePkgs = map[string]bool{
	"internal/cqeval": true,
	"internal/core":   true,
}

// meterSink classifies the guard-meter charging surface.
func (g *callGraph) meterSink(fn *types.Func) string {
	switch {
	case g.fnMatches(fn, "internal/guard", "Meter", "ChargeTuples"),
		g.fnMatches(fn, "internal/guard", "Meter", "Checkpoint"),
		g.fnMatches(fn, "internal/guard", "Meter", "TryAnswer"):
		return "guard.(*Meter)." + fn.Name()
	}
	return ""
}

// tupleLoopPos returns the position of the first loop in fd ranging over a
// tuple/candidate collection ([]cq.Mapping or []db.Tuple, by value or
// pointer element), or a len()-bounded for loop over one; NoPos when the
// function has no such loop.
func (g *callGraph) tupleLoopPos(p *lintPkg, fd *ast.FuncDecl) token.Pos {
	if fd.Body == nil {
		return token.NoPos
	}
	pos := token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			if g.tupleCollection(p.info.TypeOf(n.X)) {
				pos = n.Pos()
			}
		case *ast.ForStmt:
			if n.Cond == nil {
				return true
			}
			ast.Inspect(n.Cond, func(c ast.Node) bool {
				call, ok := c.(*ast.CallExpr)
				if !ok || !isBuiltin(p.info, call.Fun, "len") || len(call.Args) != 1 {
					return true
				}
				if g.tupleCollection(p.info.TypeOf(call.Args[0])) {
					pos = n.Pos()
				}
				return true
			})
		}
		return true
	})
	return pos
}

// tupleCollection reports whether t is a slice of tuples or candidate
// mappings: []cq.Mapping or []db.Tuple (module-relative packages), with
// pointer elements allowed.
func (g *callGraph) tupleCollection(t types.Type) bool {
	if t == nil {
		return false
	}
	slice, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	elem := slice.Elem()
	if p, ok := elem.(*types.Pointer); ok {
		elem = p.Elem()
	}
	named, ok := elem.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	rel := g.l.relOf(named.Obj().Pkg().Path())
	name := named.Obj().Name()
	return (rel == "internal/cq" && name == "Mapping") || (rel == "internal/db" && name == "Tuple")
}

// meterageManifest is the parsed .wdptlint-meterage file.
type meterageManifest struct {
	exempt map[string]int // funcID -> manifest line
}

func readMeterage(root string) (*meterageManifest, []Finding) {
	m := &meterageManifest{exempt: make(map[string]int)}
	data, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(meteragePath)))
	if err != nil {
		return m, nil // no manifest: no exemptions
	}
	var out []Finding
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 || fields[0] != "exempt" {
			out = append(out, Finding{File: meteragePath, Line: i + 1, Rule: "R13",
				Msg: fmt.Sprintf("malformed manifest line %q: want \"exempt <funcID> <reason>\"", line)})
			continue
		}
		m.exempt[fields[1]] = i + 1
	}
	return m, out
}

func lintMeterCoverage(g *callGraph, selectedRel map[string]bool) []Finding {
	scopeSelected := false
	for rel := range r13ScopePkgs {
		if selectedRel[rel] {
			scopeSelected = true
		}
	}
	if !scopeSelected {
		return nil
	}
	manifest, out := readMeterage(g.l.root)
	reach := g.reachable(g.meterSink, true, nil)
	used := make(map[string]bool)
	for _, fn := range g.sortedDecls() {
		site := g.decls[fn]
		if !r13ScopePkgs[site.pkg.rel] || !selectedRel[site.pkg.rel] {
			continue
		}
		pos := g.tupleLoopPos(site.pkg, site.decl)
		if pos == token.NoPos {
			continue
		}
		if _, metered := reach[fn]; metered {
			continue
		}
		id := g.funcID(fn)
		if _, ok := manifest.exempt[id]; ok {
			used[id] = true
			continue
		}
		out = append(out, g.l.finding(pos, "R13",
			"tuple loop in %s runs unmetered: no path to guard.(*Meter).ChargeTuples/Checkpoint/TryAnswer — charge the meter or declare \"exempt %s <reason>\" in %s",
			g.funcID(fn), id, meteragePath))
	}
	// Ratchet: exemptions that no longer match an unmetered tuple loop are
	// stale and must be removed — the manifest can only shrink.
	staleIDs := make([]string, 0)
	for id := range manifest.exempt {
		if !used[id] {
			staleIDs = append(staleIDs, id)
		}
	}
	sort.Strings(staleIDs)
	for _, id := range staleIDs {
		out = append(out, Finding{File: meteragePath, Line: manifest.exempt[id], Rule: "R13",
			Msg: fmt.Sprintf("stale exemption %q: no unmetered tuple loop matches it anymore — remove the line (the manifest only ratchets down)", id)})
	}
	return out
}
