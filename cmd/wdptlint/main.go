// Command wdptlint is the project-specific static-analysis gate. It enforces
// the determinism and hygiene rules that back the reproduction's claims (see
// docs/STATIC_ANALYSIS.md for rationale):
//
//	R1  map-order determinism: a range over a map must not feed ordered
//	    output (slice appends, writers) unless the keys are sorted first
//	R2  no panics or log.Fatal in library packages (internal/*)
//	R3  no unchecked error returns in library packages (internal/*)
//	R4  no fmt.Print* / os.Stdout outside cmd/ and examples/
//	R5  exported identifiers in the root package, internal/core, and
//	    internal/cq require doc comments
//	R6  every counter registered in internal/obs (the counterNames literal)
//	    must be documented in the docs/OBSERVABILITY.md glossary
//	R7  consolidated evaluation surface: exported Eval*/Evaluate*/
//	    PartialEval*/MaxEval* functions in internal/core and internal/uwdpt
//	    must delegate to Solve or carry a "Deprecated:" doc comment
//	R8  error-chain preservation: in internal/*, a fmt.Errorf whose
//	    arguments include an error must wrap it with %w (or the code
//	    returns a guard sentinel directly), so errors crossing a package
//	    boundary stay errors.Is-matchable
//	R9  every http.Server literal must set ReadHeaderTimeout, and the
//	    package-level http.ListenAndServe helpers (which construct a
//	    server with no timeouts) are forbidden
//
// Findings print as "file:line: [rule] message" and make the tool exit 1.
// A finding is suppressed by a directive on the same line or the line above:
//
//	//lint:ignore R1 reason why the unordered iteration is safe
//
// The tool is built exclusively on the standard library (go/parser, go/types,
// go/importer); go.mod stays dependency-free.
//
// Usage:
//
//	wdptlint [-rules R1,R2] [./... | ./pkg/dir ...]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wdptlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rulesFlag := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	enabled, err := parseRules(*rulesFlag)
	if err != nil {
		fmt.Fprintf(stderr, "wdptlint: %v\n", err)
		return 2
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "wdptlint: %v\n", err)
		return 2
	}
	findings, err := Lint(cwd, patterns, enabled)
	if err != nil {
		fmt.Fprintf(stderr, "wdptlint: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "wdptlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// allRules lists every implemented rule in report order.
var allRules = []string{"R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9"}

func parseRules(s string) (map[string]bool, error) {
	enabled := make(map[string]bool, len(allRules))
	if strings.TrimSpace(s) == "" {
		for _, r := range allRules {
			enabled[r] = true
		}
		return enabled, nil
	}
	known := make(map[string]bool, len(allRules))
	for _, r := range allRules {
		known[r] = true
	}
	for _, r := range strings.Split(s, ",") {
		r = strings.TrimSpace(r)
		if !known[r] {
			return nil, fmt.Errorf("unknown rule %q (known: %s)", r, strings.Join(allRules, ", "))
		}
		enabled[r] = true
	}
	return enabled, nil
}

// Lint loads the packages selected by patterns (resolved relative to dir,
// which must lie inside a module) and returns the unsuppressed findings,
// sorted by file, line, and rule.
func Lint(dir string, patterns []string, enabled map[string]bool) ([]Finding, error) {
	l, err := newLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.load(patterns)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, p := range pkgs {
		findings = append(findings, lintPackage(l, p, enabled)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Rule < b.Rule
	})
	return findings, nil
}

// Finding is one rule violation at a source position.
type Finding struct {
	File string // path relative to the module root
	Line int
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Rule, f.Msg)
}
