// Command wdptlint is the project-specific static-analysis gate. It enforces
// the determinism and hygiene rules that back the reproduction's claims (see
// docs/STATIC_ANALYSIS.md for rationale):
//
//	R1  map-order determinism: a range over a map must not feed ordered
//	    output (slice appends, writers) unless the keys are sorted first
//	R2  no panics or log.Fatal in library packages (internal/*)
//	R3  no unchecked error returns in library packages (internal/*)
//	R4  no fmt.Print* / os.Stdout outside cmd/ and examples/
//	R5  exported identifiers in the root package, internal/core, and
//	    internal/cq require doc comments
//	R6  every counter registered in internal/obs (the counterNames literal)
//	    must be documented in the docs/OBSERVABILITY.md glossary
//	R7  consolidated evaluation surface: exported Eval*/Evaluate*/
//	    PartialEval*/MaxEval* functions in internal/core and internal/uwdpt
//	    must delegate to Solve or carry a "Deprecated:" doc comment
//	R8  error-chain preservation: in internal/*, a fmt.Errorf whose
//	    arguments include an error must wrap it with %w (or the code
//	    returns a guard sentinel directly), so errors crossing a package
//	    boundary stay errors.Is-matchable
//	R9  every http.Server literal must set ReadHeaderTimeout, and the
//	    package-level http.ListenAndServe helpers (which construct a
//	    server with no timeouts) are forbidden
//	R14 metric-name registry hygiene: every name in the internal/obs
//	    registries (counterNames, histNames, gaugeNames,
//	    runtimeMetricNames) is snake_case, globally unique, and — for the
//	    exposition-facing registries — documented in the
//	    docs/OBSERVABILITY.md glossary
//	R15 ID-native kernels: internal/cqeval and internal/core must not call
//	    the Deprecated db string accessors (Tuples, Matching,
//	    ActiveDomain), build per-iteration string map keys in loops, or
//	    compare db.Tuple components in loops — hot paths work on
//	    dictionary term IDs (see docs/STORAGE.md)
//	R16 crash-safe persistence: inside internal/db and its subpackages,
//	    the raw file-mutation primitives os.Create, os.WriteFile, and
//	    os.Rename are forbidden outside the sanctioned crash-safe writer
//	    (internal/db/snapshot/atomic.go) — durable state must go through
//	    temp file + fsync + atomic rename (see docs/ROBUSTNESS.md)
//	R17 timeout-bounded outbound HTTP: in the peer-dialing packages
//	    (internal/cluster and its subpackages, internal/server/client),
//	    the package-level http.Get/Head/Post/PostForm helpers,
//	    http.DefaultClient, and http.Client literals without a Timeout
//	    are forbidden — a hung peer must not pin a scatter leg, health
//	    probe, or failover walk forever (see docs/CLUSTER.md)
//
// R10-R13 are whole-program rules: they run over a type-resolved
// cross-package call graph of the full loaded closure (see graphrules.go
// and docs/STATIC_ANALYSIS.md):
//
//	R10 context propagation: internal/* code must not mint
//	    context.Background()/TODO() (outside the nil-defaulting guard at
//	    public boundaries), and a function that transitively reaches a
//	    cancellable sink (par fan-out, guard meter, db index scan,
//	    net/http) must accept a context/meter/pool or a carrier type
//	R11 goroutine hygiene: a go statement outside internal/par must be
//	    provably joined in its function (WaitGroup Wait or a receive from
//	    a channel the goroutine signals)
//	R12 determinism taint: values derived from time.Now, global math/rand,
//	    or unsorted map iteration must not flow — through any number of
//	    calls — into internal/report, internal/cq, or internal/harness;
//	    internal/obs and internal/guard are whitelisted at the source
//	R13 budget-metering coverage: tuple loops in internal/cqeval and
//	    internal/core must reach the guard meter, audited against the
//	    .wdptlint-meterage manifest (exemptions ratchet down)
//
// Findings print as "file:line: [rule] message" and make the tool exit 1.
// A finding is suppressed by a directive on the same line or the line above:
//
//	//lint:ignore R1 reason why the unordered iteration is safe
//
// With -baseline, findings recorded in the baseline file are grandfathered;
// new findings still fail, and baseline entries that no longer fire fail
// too (the ratchet: the baseline only shrinks). -write-baseline records the
// current findings. -json emits findings as a JSON array for CI annotation.
//
// The tool is built exclusively on the standard library (go/parser, go/types,
// go/importer); go.mod stays dependency-free. Packages are parsed and
// type-checked in parallel (dependency-ordered levels); the timing line on
// stderr is the gate's evidence that the parallel loader is active.
//
// Usage:
//
//	wdptlint [-rules R1,R2] [-json] [-baseline file [-write-baseline]] [./... | ./pkg/dir ...]
//	wdptlint -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wdptlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rulesFlag := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	listFlag := fs.Bool("list", false, "list the implemented rules and exit")
	jsonFlag := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	baselineFlag := fs.String("baseline", "", "baseline file: recorded findings are grandfathered, stale entries fail (ratchet)")
	writeBaseline := fs.Bool("write-baseline", false, "write the current findings to the -baseline file and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listFlag {
		for _, r := range allRules {
			fmt.Fprintf(stdout, "%-4s %s\n", r.id, r.synopsis)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	enabled, err := parseRules(*rulesFlag)
	if err != nil {
		fmt.Fprintf(stderr, "wdptlint: %v\n", err)
		return 2
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "wdptlint: %v\n", err)
		return 2
	}
	findings, timing, err := lintTimed(cwd, patterns, enabled)
	if err != nil {
		fmt.Fprintf(stderr, "wdptlint: %v\n", err)
		return 2
	}
	fmt.Fprintf(stderr, "wdptlint: %s\n", timing)

	if *baselineFlag != "" && *writeBaseline {
		if err := writeBaselineFile(*baselineFlag, findings); err != nil {
			fmt.Fprintf(stderr, "wdptlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "wdptlint: wrote %d baseline entr%s to %s\n",
			len(findings), plural(len(findings), "y", "ies"), *baselineFlag)
		return 0
	}
	var stale []BaselineEntry
	if *baselineFlag != "" {
		base, err := readBaselineFile(*baselineFlag)
		if err != nil {
			fmt.Fprintf(stderr, "wdptlint: %v\n", err)
			return 2
		}
		findings, stale = applyBaseline(findings, base)
	}

	if *jsonFlag {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "wdptlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	for _, e := range stale {
		fmt.Fprintf(stderr, "wdptlint: stale baseline entry (no longer fires — remove it): %s: [%s] %s\n", e.File, e.Rule, e.Msg)
	}
	if len(findings) > 0 || len(stale) > 0 {
		fmt.Fprintf(stderr, "wdptlint: %d finding(s), %d stale baseline entr%s\n",
			len(findings), len(stale), plural(len(stale), "y", "ies"))
		return 1
	}
	return 0
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// ruleSpec names one rule for -list.
type ruleSpec struct {
	id       string
	synopsis string
}

// allRules lists every implemented rule in report order.
var allRules = []ruleSpec{
	{"R1", "map-order determinism: no range over a map feeding an ordered sink without sorting"},
	{"R2", "no panic / log.Fatal / os.Exit in library packages"},
	{"R3", "no unchecked error returns in internal/*"},
	{"R4", "no fmt.Print* / os.Stdout outside cmd/ and examples/"},
	{"R5", "exported identifiers in the façade, internal/core, internal/cq need doc comments"},
	{"R6", "every internal/obs counter is documented in docs/OBSERVABILITY.md"},
	{"R7", "exported Eval* in internal/core, internal/uwdpt delegates to Solve or is Deprecated"},
	{"R8", "fmt.Errorf with an error argument in internal/* must wrap with %w"},
	{"R9", "http.Server must set ReadHeaderTimeout; no naked ListenAndServe"},
	{"R10", "whole-program: internal/* reaching a cancellable sink must thread ctx/meter/pool; no context.Background in library code"},
	{"R11", "go statements outside internal/par must be provably joined (WaitGroup/channel)"},
	{"R12", "whole-program: time.Now / global rand / unsorted map order must not flow into report, cq, or harness"},
	{"R13", "whole-program: tuple loops in cqeval/core must reach the guard meter (meterage manifest ratchets)"},
	{"R14", "internal/obs metric-name registries: snake_case, unique, exposition names documented in the glossary"},
	{"R15", "cqeval/core kernels stay ID-native: no deprecated db string accessors, per-row string map keys, or Tuple string comparisons in loops"},
	{"R16", "internal/db must not call os.Create/os.WriteFile/os.Rename outside the crash-safe snapshot writer"},
	{"R17", "outbound HTTP in cluster/client packages: no http.Get-style helpers, no http.DefaultClient, every http.Client literal sets Timeout"},
}

func parseRules(s string) (map[string]bool, error) {
	known := make(map[string]bool, len(allRules))
	for _, r := range allRules {
		known[r.id] = true
	}
	enabled := make(map[string]bool, len(allRules))
	if strings.TrimSpace(s) == "" {
		for _, r := range allRules {
			enabled[r.id] = true
		}
		return enabled, nil
	}
	var ids []string
	for _, r := range allRules {
		ids = append(ids, r.id)
	}
	for _, r := range strings.Split(s, ",") {
		r = strings.TrimSpace(r)
		if !known[r] {
			return nil, fmt.Errorf("unknown rule %q (known: %s)", r, strings.Join(ids, ", "))
		}
		enabled[r] = true
	}
	return enabled, nil
}

// Lint loads the packages selected by patterns (resolved relative to dir,
// which must lie inside a module) and returns the unsuppressed findings,
// sorted by file, line, and rule.
func Lint(dir string, patterns []string, enabled map[string]bool) ([]Finding, error) {
	findings, _, err := lintTimed(dir, patterns, enabled)
	return findings, err
}

// lintTimed is Lint plus the loader's timing profile.
func lintTimed(dir string, patterns []string, enabled map[string]bool) ([]Finding, LoadTiming, error) {
	l, err := newLoader(dir)
	if err != nil {
		return nil, LoadTiming{}, err
	}
	pkgs, err := l.load(patterns)
	if err != nil {
		return nil, l.timing, err
	}
	var findings []Finding
	for _, p := range pkgs {
		findings = append(findings, lintPackage(l, p, enabled)...)
	}
	findings = append(findings, lintWholeProgram(l, pkgs, enabled)...)
	findings = l.applySuppressions(findings)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return findings, l.timing, nil
}

// Finding is one rule violation at a source position.
type Finding struct {
	File string `json:"file"` // path relative to the module root
	Line int    `json:"line"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Rule, f.Msg)
}
