package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Package-role predicates: the rules distinguish binaries (cmd/, examples/),
// which own the process and its standard streams, from library packages
// (everything else), which must stay silent, panic-free, and error-checked.

func isBinaryPkg(rel string) bool {
	return rel == "cmd" || rel == "examples" ||
		strings.HasPrefix(rel, "cmd/") || strings.HasPrefix(rel, "examples/")
}

func isInternalPkg(rel string) bool {
	return rel == "internal" || strings.HasPrefix(rel, "internal/")
}

// docRequiredPkg reports whether R5 applies: the public façade and the two
// packages whose exported surface mirrors the paper's definitions.
func docRequiredPkg(rel string) bool {
	return rel == "." || rel == "internal/core" || rel == "internal/cq"
}

// counterRegistryPkg reports whether R6 applies: the observability package
// holding the counter registry.
func counterRegistryPkg(rel string) bool {
	return rel == "internal/obs"
}

// lintPackage runs the enabled per-file rules over one package and returns
// the findings (suppressions are applied centrally by Lint, so whole-program
// findings get the same treatment).
func lintPackage(l *loader, p *lintPkg, enabled map[string]bool) []Finding {
	var out []Finding
	for _, f := range p.files {
		if enabled["R1"] {
			out = append(out, lintMapOrder(l, p, f)...)
		}
		if enabled["R2"] && !isBinaryPkg(p.rel) {
			out = append(out, lintNoPanic(l, p, f)...)
		}
		if enabled["R3"] && isInternalPkg(p.rel) {
			out = append(out, lintUncheckedErrors(l, p, f)...)
		}
		if enabled["R4"] && !isBinaryPkg(p.rel) {
			out = append(out, lintNoStdout(l, p, f)...)
		}
		if enabled["R5"] && docRequiredPkg(p.rel) {
			out = append(out, lintDocComments(l, p, f)...)
		}
		if enabled["R6"] && counterRegistryPkg(p.rel) {
			out = append(out, lintCounterGlossary(l, f)...)
		}
		if enabled["R7"] && solveSurfacePkg(p.rel) {
			out = append(out, lintSolveSurface(l, f)...)
		}
		if enabled["R8"] && isInternalPkg(p.rel) {
			out = append(out, lintErrorWrapping(l, p, f)...)
		}
		if enabled["R9"] {
			out = append(out, lintHTTPServer(l, p, f)...)
		}
		if enabled["R10"] && isInternalPkg(p.rel) {
			out = append(out, lintBackgroundContext(l, p, f)...)
		}
		if enabled["R11"] && p.rel != "internal/par" {
			out = append(out, lintGoroutineJoin(l, p, f)...)
		}
		if enabled["R15"] && hotPathPkg(p.rel) {
			out = append(out, lintHotPathKeys(l, p, f)...)
		}
		if enabled["R16"] && persistencePkg(p.rel) {
			out = append(out, lintDurableWrites(l, p, f)...)
		}
		if enabled["R17"] && outboundHTTPPkg(p.rel) {
			out = append(out, lintOutboundHTTP(l, p, f)...)
		}
	}
	// R14 spans the registry variables of the whole package (uniqueness is
	// cross-file), so it runs once after the per-file rules.
	if enabled["R14"] && counterRegistryPkg(p.rel) {
		out = append(out, lintMetricRegistry(l, p)...)
	}
	return out
}

func (l *loader) finding(pos token.Pos, rule, format string, args ...interface{}) Finding {
	position := l.fset.Position(pos)
	file := position.Filename
	if rel, err := filepath.Rel(l.root, file); err == nil {
		file = filepath.ToSlash(rel)
	}
	return Finding{File: file, Line: position.Line, Rule: rule, Msg: fmt.Sprintf(format, args...)}
}

// ---------------------------------------------------------------------------
// R1 — map-order determinism.
//
// Go randomizes map iteration order, so a range over a map whose body feeds
// an ordered sink (appends to a slice declared outside the loop, writes to a
// writer, sends on a channel) produces run-to-run nondeterministic results.
// The canonical key-collection idiom — append the keys, then sort them before
// use — is recognized and exempted.

func lintMapOrder(l *loader, p *lintPkg, f *ast.File) []Finding {
	var out []Finding
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		for _, s := range mapRangeSinks(p, rs) {
			if s.target != nil && sortedAfter(p, stack, rs, s.target) {
				continue
			}
			out = append(out, l.finding(s.pos, "R1",
				"range over map %s: %s depends on map iteration order; iterate over sorted keys",
				exprString(rs.X), s.what))
		}
		return true
	})
	return out
}

// sink is one order-sensitive operation inside a map-range body.
type sink struct {
	pos    token.Pos
	what   string
	target types.Object // appended-to slice, when the sink is an append
}

func mapRangeSinks(p *lintPkg, rs *ast.RangeStmt) []sink {
	var sinks []sink
	outside := func(e ast.Expr) types.Object {
		id := rootIdent(e)
		if id == nil {
			return nil
		}
		obj := p.info.ObjectOf(id)
		if obj == nil || obj.Pos() == token.NoPos {
			return nil
		}
		if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
			return nil // declared inside the loop: per-iteration state
		}
		return obj
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if obj := outside(n.Chan); obj != nil {
				sinks = append(sinks, sink{pos: n.Pos(), what: fmt.Sprintf("send on channel %q", obj.Name())})
			}
		case *ast.CallExpr:
			if isBuiltin(p.info, n.Fun, "append") && len(n.Args) > 0 {
				if obj := outside(n.Args[0]); obj != nil {
					sinks = append(sinks, sink{
						pos:    n.Pos(),
						what:   fmt.Sprintf("append to slice %q declared outside the loop", obj.Name()),
						target: obj,
					})
				}
				return true
			}
			fn := calleeFunc(p.info, n)
			if fn == nil {
				return true
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
				(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
				sinks = append(sinks, sink{pos: n.Pos(), what: "call to fmt." + fn.Name() + " writes ordered output"})
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				switch fn.Name() {
				case "Write", "WriteString", "WriteByte", "WriteRune":
					if sel, ok := unparen(n.Fun).(*ast.SelectorExpr); ok {
						if obj := outside(sel.X); obj != nil {
							sinks = append(sinks, sink{pos: n.Pos(),
								what: fmt.Sprintf("%s on %q writes ordered output", fn.Name(), obj.Name())})
						}
					}
				}
			}
		}
		return true
	})
	return sinks
}

// sortedAfter recognizes the sorted-keys idiom: the slice fed by the range
// is passed to a sort.* or slices.* call later in the same enclosing block.
func sortedAfter(p *lintPkg, stack []ast.Node, rs *ast.RangeStmt, target types.Object) bool {
	var block []ast.Stmt
	for i := len(stack) - 2; i >= 0; i-- {
		switch b := stack[i].(type) {
		case *ast.BlockStmt:
			block = b.List
		case *ast.CaseClause:
			block = b.Body
		case *ast.CommClause:
			block = b.Body
		default:
			continue
		}
		break
	}
	idx := -1
	for i, s := range block {
		if s == ast.Stmt(rs) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	for _, s := range block[idx+1:] {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := calleeFunc(p.info, call)
		if fn == nil || fn.Pkg() == nil {
			continue
		}
		if pkg := fn.Pkg().Path(); pkg != "sort" && pkg != "slices" {
			continue
		}
		for _, arg := range call.Args {
			if id := rootIdent(arg); id != nil && p.info.ObjectOf(id) == target {
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// R2 — no panics in library packages.

func lintNoPanic(l *loader, p *lintPkg, f *ast.File) []Finding {
	var out []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBuiltin(p.info, call.Fun, "panic") {
			out = append(out, l.finding(call.Pos(), "R2",
				"panic in library package %s: return an error instead", p.path))
			return true
		}
		if fn := calleeFunc(p.info, call); fn != nil {
			switch fn.FullName() {
			case "log.Fatal", "log.Fatalf", "log.Fatalln", "os.Exit":
				out = append(out, l.finding(call.Pos(), "R2",
					"%s in library package %s: return an error instead", fn.FullName(), p.path))
			}
		}
		return true
	})
	return out
}

// ---------------------------------------------------------------------------
// R3 — unchecked error returns in internal packages.
//
// A call whose result includes an error must not be used as a bare
// statement. Writes to error-free sinks (strings.Builder, bytes.Buffer —
// their Write methods are documented to always return a nil error) are
// exempt, including fmt.Fprint* directed at them.

func lintUncheckedErrors(l *loader, p *lintPkg, f *ast.File) []Finding {
	var out []Finding
	check := func(call *ast.CallExpr, context string) {
		t := p.info.TypeOf(call)
		if t == nil || !typeHasError(t) || errCheckedSink(p, call) {
			return
		}
		name := "call"
		if fn := calleeFunc(p.info, call); fn != nil {
			name = fn.FullName()
		}
		out = append(out, l.finding(call.Pos(), "R3",
			"%s of %s discards its error result", context, name))
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				check(call, "result")
			}
		case *ast.GoStmt:
			check(n.Call, "go statement")
		case *ast.DeferStmt:
			check(n.Call, "deferred call")
		}
		return true
	})
	return out
}

func typeHasError(t types.Type) bool {
	errType := types.Universe.Lookup("error").Type()
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errType)
}

func errCheckedSink(p *lintPkg, call *ast.CallExpr) bool {
	fn := calleeFunc(p.info, call)
	if fn == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return isErrFreeWriter(sig.Recv().Type())
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		// fmt.Print* goes to os.Stdout, whose placement R4 already polices;
		// double-reporting the conventionally ignored stdout error is noise.
		if strings.HasPrefix(fn.Name(), "Print") {
			return true
		}
		if strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
			if t := p.info.TypeOf(call.Args[0]); t != nil {
				return isErrFreeWriter(t)
			}
		}
	}
	return false
}

func isErrFreeWriter(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}

// ---------------------------------------------------------------------------
// R4 — no stdout writes outside binaries.

func lintNoStdout(l *loader, p *lintPkg, f *ast.File) []Finding {
	var out []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(p.info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				switch fn.Name() {
				case "Print", "Printf", "Println":
					out = append(out, l.finding(n.Pos(), "R4",
						"fmt.%s writes to os.Stdout from library package %s: take an io.Writer instead", fn.Name(), p.path))
				}
			}
		case *ast.SelectorExpr:
			if obj, ok := p.info.Uses[n.Sel].(*types.Var); ok &&
				obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "Stdout" {
				out = append(out, l.finding(n.Pos(), "R4",
					"os.Stdout used in library package %s: take an io.Writer instead", p.path))
			}
		}
		return true
	})
	return out
}

// ---------------------------------------------------------------------------
// R5 — doc comments on exported identifiers.

func lintDocComments(l *loader, p *lintPkg, f *ast.File) []Finding {
	var out []Finding
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			kind := "function"
			if d.Recv != nil {
				if !exportedReceiver(d) {
					continue
				}
				kind = "method"
			}
			out = append(out, l.finding(d.Name.Pos(), "R5",
				"exported %s %s lacks a doc comment", kind, d.Name.Name))
		case *ast.GenDecl:
			if d.Tok == token.IMPORT {
				continue
			}
			for _, spec := range d.Specs {
				var names []*ast.Ident
				var doc *ast.CommentGroup
				switch s := spec.(type) {
				case *ast.TypeSpec:
					names = []*ast.Ident{s.Name}
					doc = s.Doc
				case *ast.ValueSpec:
					names = s.Names
					doc = s.Doc
				}
				if doc != nil || d.Doc != nil {
					continue
				}
				for _, name := range names {
					if name.IsExported() {
						out = append(out, l.finding(name.Pos(), "R5",
							"exported %s %s lacks a doc comment", strings.ToLower(d.Tok.String()), name.Name))
					}
				}
			}
		}
	}
	return out
}

func exportedReceiver(d *ast.FuncDecl) bool {
	if len(d.Recv.List) == 0 {
		return false
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// ---------------------------------------------------------------------------
// R6 — counter glossary completeness.
//
// internal/obs registers every engine counter name in its counterNames
// literal, and docs/OBSERVABILITY.md is the glossary anyone interpreting
// -stats output or a BENCH_*.json artifact reads. The rule pins the two
// together: every name registered in the literal must appear in the
// glossary, so a counter cannot be added (or renamed) without documenting
// what it measures.

const glossaryPath = "docs/OBSERVABILITY.md"

func lintCounterGlossary(l *loader, f *ast.File) []Finding {
	var out []Finding
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if name.Name != "counterNames" || i >= len(vs.Values) {
					continue
				}
				if lit, ok := vs.Values[i].(*ast.CompositeLit); ok {
					out = append(out, checkGlossary(l, lit)...)
				}
			}
		}
	}
	return out
}

func checkGlossary(l *loader, lit *ast.CompositeLit) []Finding {
	data, err := os.ReadFile(filepath.Join(l.root, filepath.FromSlash(glossaryPath)))
	if err != nil {
		return []Finding{l.finding(lit.Pos(), "R6",
			"counter registry has no readable glossary at %s: %v", glossaryPath, err)}
	}
	glossary := string(data)
	var out []Finding
	for _, elt := range lit.Elts {
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			val = kv.Value
		}
		bl, ok := val.(*ast.BasicLit)
		if !ok || bl.Kind != token.STRING {
			continue
		}
		name, err := strconv.Unquote(bl.Value)
		if err != nil || name == "" {
			continue
		}
		if !strings.Contains(glossary, name) {
			out = append(out, l.finding(bl.Pos(), "R6",
				"counter %q is not documented in %s", name, glossaryPath))
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// R14 — metric-name registry hygiene.
//
// internal/obs carries every observable name in a handful of registry
// variables: counterNames (engine counters, R6's glossary rule), histNames
// and gaugeNames (the Prometheus histogram/gauge families wdptd exposes),
// and runtimeMetricNames (the Go runtime gauges sampled on scrape). A name
// that escapes into a /metrics scrape or a BENCH artifact is an API: dashboards
// and benchdiff comparisons key on it. The rule pins three properties:
//
//   - shape: every dot-separated segment of every name is snake_case
//     ([a-z][a-z0-9_]*), so exposition mangling ("." -> "_") can never
//     produce an invalid or colliding Prometheus metric name;
//   - uniqueness: no name is registered twice across the registries;
//   - glossary: names in the exposition-facing registries (histNames,
//     gaugeNames, counterVecNames, runtimeMetricNames) are documented in
//     docs/OBSERVABILITY.md. counterNames' glossary containment is R6's
//     job and is not re-checked here.
//
// The checks are exclusive per name (a malformed or duplicate name is not
// also reported as undocumented), so each defect yields one finding.

// metricRegistryVars names the internal/obs registry variables R14 scans.
var metricRegistryVars = map[string]bool{
	"counterNames":       true,
	"histNames":          true,
	"gaugeNames":         true,
	"counterVecNames":    true,
	"runtimeMetricNames": true,
}

func lintMetricRegistry(l *loader, p *lintPkg) []Finding {
	glossary, glossaryErr := os.ReadFile(filepath.Join(l.root, filepath.FromSlash(glossaryPath)))
	var out []Finding
	firstSeen := make(map[string]string) // name -> registry var that registered it
	for _, f := range p.files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, varName := range vs.Names {
					if !metricRegistryVars[varName.Name] || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					out = append(out, checkMetricRegistry(l, varName.Name, lit, firstSeen, string(glossary), glossaryErr)...)
				}
			}
		}
	}
	return out
}

// checkMetricRegistry validates the string elements of one registry literal.
func checkMetricRegistry(l *loader, varName string, lit *ast.CompositeLit, firstSeen map[string]string, glossary string, glossaryErr error) []Finding {
	var out []Finding
	for _, elt := range lit.Elts {
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			val = kv.Value
		}
		bl, ok := val.(*ast.BasicLit)
		if !ok || bl.Kind != token.STRING {
			continue
		}
		name, err := strconv.Unquote(bl.Value)
		if err != nil || name == "" {
			continue
		}
		if !snakeCaseMetric(name) {
			out = append(out, l.finding(bl.Pos(), "R14",
				"metric name %q in %s is not snake_case (every dot-separated segment must match [a-z][a-z0-9_]*)", name, varName))
			continue
		}
		if prev, dup := firstSeen[name]; dup {
			out = append(out, l.finding(bl.Pos(), "R14",
				"metric name %q in %s is already registered in %s: exposition names must be unique", name, varName, prev))
			continue
		}
		firstSeen[name] = varName
		if varName == "counterNames" {
			continue // R6 owns the counter glossary
		}
		if glossaryErr != nil {
			out = append(out, l.finding(bl.Pos(), "R14",
				"metric registry has no readable glossary at %s: %v", glossaryPath, glossaryErr))
			continue
		}
		if !strings.Contains(glossary, name) {
			out = append(out, l.finding(bl.Pos(), "R14",
				"metric %q is not documented in %s", name, glossaryPath))
		}
	}
	return out
}

// snakeCaseMetric reports whether every dot-separated segment of name
// matches [a-z][a-z0-9_]*.
func snakeCaseMetric(name string) bool {
	for _, seg := range strings.Split(name, ".") {
		if seg == "" {
			return false
		}
		for i, r := range seg {
			switch {
			case r >= 'a' && r <= 'z':
			case i > 0 && (r == '_' || (r >= '0' && r <= '9')):
			default:
				return false
			}
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// R7 — consolidated evaluation surface.
//
// Solve (core.PatternTree.Solve / uwdpt.Union.Solve) is the single
// evaluation entry point: context cancellation, engine selection, stats
// routing, and the worker pool are configured there and nowhere else. The
// rule keeps that consolidation from eroding: a new exported function or
// method in internal/core or internal/uwdpt whose name starts with an
// evaluation prefix must either delegate to Solve (reference it in its
// body) or be one of the frozen legacy wrappers (carry "Deprecated:" in its
// doc comment). Anything else is a second evaluation surface and gets
// flagged.

func solveSurfacePkg(rel string) bool {
	return rel == "internal/core" || rel == "internal/uwdpt"
}

// solvePrefixes are the evaluation-function name prefixes R7 polices.
// "Evaluate" is listed for documentation; "Eval" already covers it.
var solvePrefixes = []string{"Eval", "Evaluate", "PartialEval", "MaxEval"}

func lintSolveSurface(l *loader, f *ast.File) []Finding {
	var out []Finding
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || !fd.Name.IsExported() || fd.Name.Name == "Solve" {
			continue
		}
		matched := false
		for _, pre := range solvePrefixes {
			if strings.HasPrefix(fd.Name.Name, pre) {
				matched = true
				break
			}
		}
		if !matched {
			continue
		}
		if fd.Doc != nil && strings.Contains(fd.Doc.Text(), "Deprecated:") {
			continue
		}
		if fd.Body != nil && referencesSolve(fd.Body) {
			continue
		}
		out = append(out, l.finding(fd.Name.Pos(), "R7",
			"exported evaluation function %s bypasses the consolidated Solve API; delegate to Solve or mark it Deprecated", fd.Name.Name))
	}
	return out
}

// referencesSolve reports whether the body mentions the identifier Solve —
// a direct call, a method call through any receiver, or a helper that
// routes there.
func referencesSolve(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "Solve" {
			found = true
		}
		return !found
	})
	return found
}

// ---------------------------------------------------------------------------
// R8 — error-chain preservation across internal package boundaries.
//
// The guard layer's typed errors (guard.ErrDeadline, guard.ErrTupleBudget,
// ...) are matched with errors.Is at the CLI and test layers, which only
// works if every intermediate layer wraps with %w instead of flattening the
// cause into text with %v or %s. The rule flags a fmt.Errorf call in an
// internal package whose arguments include an error-typed expression but
// whose format string has no %w verb: the chain is lost at that point.
// Errors built without embedding a cause (plain messages, formatted
// non-error values) and sentinels returned directly are untouched.

func lintErrorWrapping(l *loader, p *lintPkg, f *ast.File) []Finding {
	errType, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p.info, call)
		if fn == nil || fn.FullName() != "fmt.Errorf" || len(call.Args) < 2 {
			return true
		}
		format, ok := unparen(call.Args[0]).(*ast.BasicLit)
		if !ok || format.Kind != token.STRING {
			return true // dynamic format string: not analyzable
		}
		s, err := strconv.Unquote(format.Value)
		if err != nil || strings.Contains(s, "%w") {
			return true
		}
		for _, arg := range call.Args[1:] {
			t := p.info.TypeOf(arg)
			if t == nil || !types.Implements(t, errType) {
				continue
			}
			out = append(out, l.finding(call.Pos(), "R8",
				"fmt.Errorf flattens error argument %s without %%w: the cause is no longer errors.Is-matchable across the package boundary", exprString(arg)))
		}
		return true
	})
	return out
}

// ---------------------------------------------------------------------------
// R9 — HTTP servers must bound header reads.
//
// wdptd serves untrusted network clients, and an http.Server with no
// ReadHeaderTimeout lets a client that trickles its request headers hold a
// connection (and its admission slot) forever — the classic Slowloris
// resource exhaustion. The rule flags every http.Server composite literal
// that does not set ReadHeaderTimeout, and every call to the package-level
// http.ListenAndServe / http.ListenAndServeTLS helpers, which construct an
// implicit server with no timeouts at all and offer no way to add one.
// Serving through a method on an explicitly constructed *http.Server is
// fine: the construction site is where the rule looks.

func lintHTTPServer(l *loader, p *lintPkg, f *ast.File) []Finding {
	var out []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			t := p.info.TypeOf(n)
			if t == nil || !isHTTPServerType(t) {
				return true
			}
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					// A positional literal fills every field, including
					// ReadHeaderTimeout.
					return true
				}
				if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "ReadHeaderTimeout" {
					return true
				}
			}
			out = append(out, l.finding(n.Pos(), "R9",
				"http.Server literal does not set ReadHeaderTimeout: a client trickling headers holds the connection forever"))
		case *ast.CallExpr:
			fn := calleeFunc(p.info, n)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "net/http" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // method on an explicitly constructed server
			}
			switch fn.Name() {
			case "ListenAndServe", "ListenAndServeTLS":
				out = append(out, l.finding(n.Pos(), "R9",
					"http.%s constructs a server with no timeouts; build an http.Server with ReadHeaderTimeout instead", fn.Name()))
			}
		}
		return true
	})
	return out
}

func isHTTPServerType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "Server"
}

// ---------------------------------------------------------------------------
// R10 (per-file half) — no context.Background / context.TODO in library
// code.
//
// Library packages receive their context from the caller; minting a fresh
// background context severs the cancellation chain at that point, which is
// exactly how a Solve deadline stops being enforceable three frames down.
// Two idioms are exempt: the nil-context defaulting guard at a public
// boundary (`if ctx == nil { ctx = context.Background() }` — the Solve
// entry points accept nil for convenience), and frozen Deprecated wrappers
// (their missing ctx parameter is the reason they are deprecated).

func lintBackgroundContext(l *loader, p *lintPkg, f *ast.File) []Finding {
	var out []Finding
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || isDeprecated(fd) {
			continue
		}
		var stack []ast.Node
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			if fn.Name() != "Background" && fn.Name() != "TODO" {
				return true
			}
			if insideNilContextGuard(p, stack) {
				return true
			}
			out = append(out, l.finding(call.Pos(), "R10",
				"context.%s in library package %s severs the cancellation chain: thread the caller's context instead", fn.Name(), p.path))
			return true
		})
	}
	return out
}

// insideNilContextGuard reports whether the node at the top of stack lies
// inside an if statement whose condition tests a context.Context expression
// against nil — the defaulting idiom at nil-tolerant public boundaries.
func insideNilContextGuard(p *lintPkg, stack []ast.Node) bool {
	isContext := func(e ast.Expr) bool {
		t := p.info.TypeOf(e)
		if t == nil {
			return false
		}
		named, ok := t.(*types.Named)
		return ok && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
	}
	for i := len(stack) - 1; i >= 0; i-- {
		ifStmt, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		cond, ok := ifStmt.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.EQL {
			continue
		}
		if isNilIdent(cond.Y) && isContext(cond.X) {
			return true
		}
		if isNilIdent(cond.X) && isContext(cond.Y) {
			return true
		}
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// ---------------------------------------------------------------------------
// R11 — goroutine hygiene.
//
// Outside the worker pool, a `go` statement must be provably joined in the
// function that spawns it: the goroutine signals a sync.WaitGroup the
// function Waits on, or sends on / closes a channel the function receives
// from. Anything else is a potential leak — the chaos suite's
// goroutine-leak checks only stay meaningful if spawn sites are joined by
// construction, and a leaked scatter goroutine under wdptd load is a slow
// memory death. Fan-out belongs on par.Pool (which is exempt, and whose
// helpers are joined by its own WaitGroup).

func lintGoroutineJoin(l *loader, p *lintPkg, f *ast.File) []Finding {
	var out []Finding
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goroutineJoined(p, fd, gs) {
				return true
			}
			out = append(out, l.finding(gs.Pos(), "R11",
				"goroutine is not provably joined in %s (no WaitGroup Wait, no receive from a channel it signals): leaked goroutines outlive their query — fan out on par.Pool or join before returning", fd.Name.Name))
			return true
		})
	}
	return out
}

// goroutineJoined recognizes the two join protocols: WaitGroup (goroutine
// calls Done on a WaitGroup the function Waits on) and channel (goroutine
// sends on or closes a channel the function receives from or ranges over).
// Matching is by printed expression of the synchronization target, so
// "s.inflight" and "wg" both work.
func goroutineJoined(p *lintPkg, fd *ast.FuncDecl, gs *ast.GoStmt) bool {
	lit, ok := gs.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false // goroutine body is out of sight: not provable here
	}
	signals := make(map[string]bool) // exprs the goroutine Done()s, sends on, or closes
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			signals[exprString(n.Chan)] = true
		case *ast.CallExpr:
			if isBuiltin(p.info, n.Fun, "close") && len(n.Args) == 1 {
				signals[exprString(n.Args[0])] = true
			}
			if fn := calleeFunc(p.info, n); fn != nil && fn.Name() == "Done" && isWaitGroupMethod(fn) {
				if sel, ok := unparen(n.Fun).(*ast.SelectorExpr); ok {
					signals[exprString(sel.X)] = true
				}
			}
		}
		return true
	})
	if len(signals) == 0 {
		return false
	}
	joined := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			if n == gs {
				return false // the goroutine's own body does not join itself
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && signals[exprString(n.X)] {
				joined = true
			}
		case *ast.RangeStmt:
			if t := p.info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan && signals[exprString(n.X)] {
					joined = true
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(p.info, n); fn != nil && fn.Name() == "Wait" && isWaitGroupMethod(fn) {
				if sel, ok := unparen(n.Fun).(*ast.SelectorExpr); ok && signals[exprString(sel.X)] {
					joined = true
				}
			}
		}
		return true
	})
	return joined
}

func isWaitGroupMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// ---------------------------------------------------------------------------
// R15 — ID-native hot paths in the evaluation kernels.
//
// The storage redesign (docs/STORAGE.md) moved the kernels in
// internal/cqeval and internal/core to dictionary-encoded uint32 rows;
// strings exist only at the load and report boundaries. This rule keeps
// string work from leaking back into the kernels:
//
//   - calling a Deprecated internal/db string accessor (Relation.Tuples,
//     Relation.Matching, Database.ActiveDomain) materializes or probes
//     string tuples — kernels must use Scan/At/MatchingIDs/ContainsIDs;
//   - probing a map[string]-keyed table inside a loop with a key *built*
//     per iteration (string concatenation, fmt.Sprintf, strings.Join, or a
//     db/cq Key()-style canonical-string method) allocates one string per
//     row; the sanctioned idiom is a packed []uint32 key reused through
//     m[string(buf)], which the compiler keeps allocation-free;
//   - comparing db.Tuple components inside a loop is a per-row string
//     comparison where an ID comparison belongs.

// hotPathPkg reports whether R15 applies: the two evaluation-kernel
// packages whose inner loops the paper's polynomial bounds live in.
func hotPathPkg(rel string) bool {
	return rel == "internal/cqeval" || rel == "internal/core"
}

func lintHotPathKeys(l *loader, p *lintPkg, f *ast.File) []Finding {
	var out []Finding
	loopDepth := 0
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			switch top.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loopDepth--
			}
			return true
		}
		stack = append(stack, n)
		switch v := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
		case *ast.CallExpr:
			if name := dbStringAccessor(l, p, v); name != "" {
				out = append(out, l.finding(v.Pos(), "R15",
					"call to deprecated db string accessor %s: kernels must stay ID-native (Scan/At/MatchingIDs/ContainsIDs and the relation Dict)", name))
			}
		case *ast.IndexExpr:
			if loopDepth == 0 {
				break
			}
			t := p.info.TypeOf(v.X)
			if t == nil {
				break
			}
			m, ok := t.Underlying().(*types.Map)
			if !ok || !isStringType(m.Key()) {
				break
			}
			if pos := stringKeyConstruction(l, p, v.Index); pos.IsValid() {
				out = append(out, l.finding(pos, "R15",
					"map[string] probe in a loop with a per-iteration string key: pack IDs with db.AppendRowKey into a reused []byte and probe m[string(buf)] instead"))
			}
		case *ast.BinaryExpr:
			if loopDepth == 0 || (v.Op != token.EQL && v.Op != token.NEQ) {
				break
			}
			if isTupleComponent(l, p, v.X) || isTupleComponent(l, p, v.Y) {
				out = append(out, l.finding(v.Pos(), "R15",
					"db.Tuple component comparison in a loop: compare dictionary term IDs, not strings"))
			}
		}
		return true
	})
	return out
}

// dbStringAccessor returns the display name of the deprecated internal/db
// string accessor the call resolves to, or "".
func dbStringAccessor(l *loader, p *lintPkg, call *ast.CallExpr) string {
	fn := calleeFunc(p.info, call)
	if fn == nil || fn.Pkg() == nil || l.relOf(fn.Pkg().Path()) != "internal/db" {
		return ""
	}
	switch fn.Name() {
	case "Tuples", "Matching", "ActiveDomain":
	default:
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return "db.(" + typeShortName(sig.Recv().Type()) + ")." + fn.Name()
}

// stringKeyConstruction returns the position of the first per-iteration
// string-key build inside a map-probe key expression: a string
// concatenation, a fmt.Sprintf / strings.Join call, or a call to a
// canonical-string Key method of the db or cq packages. The packed-key
// idiom string(buf) contains none of these and stays silent.
func stringKeyConstruction(l *loader, p *lintPkg, key ast.Expr) token.Pos {
	found := token.NoPos
	ast.Inspect(key, func(n ast.Node) bool {
		if found.IsValid() {
			return false
		}
		switch v := n.(type) {
		case *ast.BinaryExpr:
			if v.Op == token.ADD && isStringType(p.info.TypeOf(v)) {
				found = v.Pos()
			}
		case *ast.CallExpr:
			fn := calleeFunc(p.info, v)
			if fn == nil || fn.Pkg() == nil {
				break
			}
			path := fn.Pkg().Path()
			switch {
			case path == "fmt" && fn.Name() == "Sprintf",
				path == "strings" && fn.Name() == "Join":
				found = v.Pos()
			case strings.EqualFold(fn.Name(), "key") &&
				(l.relOf(path) == "internal/db" || l.relOf(path) == "internal/cq"):
				found = v.Pos()
			}
		}
		return true
	})
	return found
}

// isStringType reports whether t is (an alias of) the basic string type.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isTupleComponent reports whether e indexes into a db.Tuple value.
func isTupleComponent(l *loader, p *lintPkg, e ast.Expr) bool {
	ie, ok := unparen(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	named, ok := p.info.TypeOf(ie.X).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Tuple" && l.relOf(named.Obj().Pkg().Path()) == "internal/db"
}

// ---------------------------------------------------------------------------
// R17 — outbound HTTP must be timeout-bounded.
//
// The cluster coordinator and the typed API client are the packages that
// open connections to peers, and a peer that accepts the connection and
// then hangs must not pin the caller forever: scatter-gather legs, health
// probes, and failover walks all assume an exchange eventually returns.
// Request contexts carry the per-query deadline, but a context only exists
// once a request is built — the construction-site invariant is that every
// *http.Client in these packages carries a Timeout as the transport safety
// net (client.DefaultTimeout is the sanctioned value). The rule flags, in
// the outbound-HTTP packages only:
//
//   - the package-level net/http helpers (http.Get / Head / Post /
//     PostForm), which route through the timeout-less http.DefaultClient
//     and take no context at all;
//   - any other use of http.DefaultClient (it is shared, global, and has
//     no Timeout);
//   - an http.Client composite literal that does not set Timeout.
//
// Calls through a caller-provided *http.Client are exempt — construction
// sites are where the rule looks, mirroring R9's http.Server check.

// outboundHTTPPkg reports whether R17 applies: the packages that dial out
// to wdptd peers.
func outboundHTTPPkg(rel string) bool {
	return rel == "internal/cluster" || strings.HasPrefix(rel, "internal/cluster/") ||
		rel == "internal/server/client"
}

func lintOutboundHTTP(l *loader, p *lintPkg, f *ast.File) []Finding {
	var out []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			t := p.info.TypeOf(n)
			if t == nil || !isHTTPClientType(t) {
				return true
			}
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					// A positional literal fills every field, including
					// Timeout.
					return true
				}
				if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Timeout" {
					return true
				}
			}
			out = append(out, l.finding(n.Pos(), "R17",
				"http.Client literal does not set Timeout: a hung peer pins the connection forever; set client.DefaultTimeout or bound every request with a context"))
		case *ast.CallExpr:
			fn := calleeFunc(p.info, n)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "net/http" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // method on an explicitly constructed client
			}
			switch fn.Name() {
			case "Get", "Head", "Post", "PostForm":
				out = append(out, l.finding(n.Pos(), "R17",
					"http.%s uses the timeout-less http.DefaultClient and carries no context: build the request with http.NewRequestWithContext and send it through a Timeout-bearing client", fn.Name()))
			}
		case *ast.SelectorExpr:
			if obj, ok := p.info.Uses[n.Sel].(*types.Var); ok &&
				obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "DefaultClient" {
				out = append(out, l.finding(n.Pos(), "R17",
					"http.DefaultClient has no Timeout: construct an http.Client with Timeout (client.DefaultTimeout) instead"))
			}
		}
		return true
	})
	return out
}

func isHTTPClientType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "Client"
}

// ---------------------------------------------------------------------------
// Shared AST/type helpers.

func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// rootIdent returns the leftmost identifier of an lvalue-ish expression:
// b in &b, s.rows, m[k], (*p).field.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.ParenExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		default:
			return nil
		}
	}
}

func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// calleeFunc resolves the called function or method, or nil for builtins,
// type conversions, and calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.CallExpr:
		return exprString(v.Fun) + "(...)"
	case *ast.ParenExpr:
		return exprString(v.X)
	}
	return "expression"
}

// ---------------------------------------------------------------------------
// R16 — crash-safe persistence in internal/db.
//
// The durable-snapshot subsystem (docs/ROBUSTNESS.md) owns every mutation of
// on-disk state: data is written to a temp file, fsynced, atomically renamed
// into place, and the directory is fsynced — so a crash at any instant
// leaves either the previous intact file or the new intact file, never a
// torn one. Raw os.Create / os.WriteFile / os.Rename calls elsewhere in
// internal/db would reintroduce exactly the torn-write window the writer
// exists to close, so the rule forbids them everywhere in the storage layer
// except the one sanctioned helper file.

// persistencePkg reports whether R16 applies: internal/db and everything
// under it (the storage layer that owns durable state).
func persistencePkg(rel string) bool {
	return rel == "internal/db" || strings.HasPrefix(rel, "internal/db/")
}

// crashSafeWriterFile is the one file sanctioned to call the raw os
// mutation primitives: the snapshot package's atomic writer.
const crashSafeWriterFile = "internal/db/snapshot/atomic.go"

func lintDurableWrites(l *loader, p *lintPkg, f *ast.File) []Finding {
	file := l.fset.Position(f.Package).Filename
	if rel, err := filepath.Rel(l.root, file); err == nil {
		file = filepath.ToSlash(rel)
	}
	if file == crashSafeWriterFile {
		return nil
	}
	var out []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p.info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
			return true
		}
		switch fn.Name() {
		case "Create", "WriteFile", "Rename":
			out = append(out, l.finding(call.Pos(), "R16",
				"os.%s in the storage layer: durable writes go through the crash-safe snapshot writer (temp file + fsync + atomic rename), not raw os mutations", fn.Name()))
		}
		return true
	})
	return out
}
