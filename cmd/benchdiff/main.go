// Command benchdiff compares two BENCH_<date>.json artifacts written by
// wdptbench -json and fails on performance regressions.
//
//	benchdiff old.json new.json
//
// Experiments are matched by id and their timing points by position (the
// points are recorded in measurement-call order, which is deterministic for
// a given experiment). For every matched point the minimum and the p95 are
// compared; a point regresses when the new value exceeds the old by more
// than the tolerance (default 20%, overridable with WDPT_BENCH_TOLERANCE,
// e.g. 0.35). Points faster than WDPT_BENCH_MIN_NS in the old artifact
// (default 100µs) are skipped — at that scale scheduler jitter dominates
// and a ratio is noise, not signal. WDPT_BENCH_METRICS selects which point
// statistics gate (comma-separated subset of "min,p95"; default both):
// at low repetition counts p95 degenerates to the maximum, where one GC
// cycle landing inside a rep reads as a regression, so quick-mode gates
// compare "min" only.
//
// Exit codes: 0 no regression, 1 regression found, 2 usage/parse error.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// timingPoint mirrors harness.TimingPoint's JSON shape.
type timingPoint struct {
	MinNS int64 `json:"min_ns"`
	P50NS int64 `json:"p50_ns"`
	P95NS int64 `json:"p95_ns"`
	P99NS int64 `json:"p99_ns"`
	Reps  int   `json:"reps"`
}

// experiment is the slice of the artifact benchdiff reads.
type experiment struct {
	ID        string        `json:"id"`
	ElapsedNS int64         `json:"elapsed_ns"`
	Timings   []timingPoint `json:"timings"`
}

// artifact is the BENCH_<date>.json shape benchdiff reads.
type artifact struct {
	Date        string       `json:"date"`
	Commit      string       `json:"commit"`
	GoVersion   string       `json:"go_version"`
	Quick       bool         `json:"quick"`
	Parallelism int          `json:"parallelism"`
	Experiments []experiment `json:"experiments"`
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff <old.json> <new.json>")
		return 2
	}
	tolerance := 0.20
	if v := os.Getenv("WDPT_BENCH_TOLERANCE"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			fmt.Fprintf(stderr, "benchdiff: bad WDPT_BENCH_TOLERANCE %q\n", v)
			return 2
		}
		tolerance = f
	}
	var minNS int64 = 100_000
	if v := os.Getenv("WDPT_BENCH_MIN_NS"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			fmt.Fprintf(stderr, "benchdiff: bad WDPT_BENCH_MIN_NS %q\n", v)
			return 2
		}
		minNS = n
	}
	metrics := map[string]bool{"min": true, "p95": true}
	if v := os.Getenv("WDPT_BENCH_METRICS"); v != "" {
		metrics = make(map[string]bool)
		for _, m := range strings.Split(v, ",") {
			switch m = strings.TrimSpace(m); m {
			case "min", "p95":
				metrics[m] = true
			default:
				fmt.Fprintf(stderr, "benchdiff: bad WDPT_BENCH_METRICS entry %q (want min and/or p95)\n", m)
				return 2
			}
		}
	}
	oldArt, err := load(args[0])
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	newArt, err := load(args[1])
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "benchdiff: old %s (commit %s, %s) vs new %s (commit %s, %s), tolerance %.0f%%\n",
		oldArt.Date, orUnknown(oldArt.Commit), orUnknown(oldArt.GoVersion),
		newArt.Date, orUnknown(newArt.Commit), orUnknown(newArt.GoVersion), tolerance*100)

	newByID := make(map[string]experiment, len(newArt.Experiments))
	for _, e := range newArt.Experiments {
		newByID[e.ID] = e
	}
	compared, skipped, regressions := 0, 0, 0
	for _, oe := range oldArt.Experiments {
		ne, ok := newByID[oe.ID]
		if !ok {
			fmt.Fprintf(stdout, "  %s: missing from new artifact, skipped\n", oe.ID)
			skipped++
			continue
		}
		n := len(oe.Timings)
		if len(ne.Timings) < n {
			n = len(ne.Timings)
		}
		if n == 0 {
			// Old artifacts (pre-timings) still diff as a whole-experiment
			// wall-clock check rather than silently passing.
			if bad, msg := compare(oe.ID, "elapsed", oe.ElapsedNS, ne.ElapsedNS, tolerance, minNS); bad {
				fmt.Fprintln(stdout, msg)
				regressions++
			}
			compared++
			continue
		}
		for i := 0; i < n; i++ {
			op, np := oe.Timings[i], ne.Timings[i]
			if metrics["min"] {
				point := fmt.Sprintf("point %d/min", i)
				if bad, msg := compare(oe.ID, point, op.MinNS, np.MinNS, tolerance, minNS); bad {
					fmt.Fprintln(stdout, msg)
					regressions++
				}
			}
			if metrics["p95"] {
				point := fmt.Sprintf("point %d/p95", i)
				if bad, msg := compare(oe.ID, point, op.P95NS, np.P95NS, tolerance, minNS); bad {
					fmt.Fprintln(stdout, msg)
					regressions++
				}
			}
			compared++
		}
	}
	fmt.Fprintf(stdout, "benchdiff: %d point(s) compared, %d experiment(s) skipped, %d regression(s)\n",
		compared, skipped, regressions)
	if regressions > 0 {
		return 1
	}
	return 0
}

// compare reports whether newV regressed past oldV by more than tolerance.
// Points below the minNS noise floor in the old artifact never regress.
func compare(id, point string, oldV, newV int64, tolerance float64, minNS int64) (bool, string) {
	if oldV < minNS || oldV <= 0 {
		return false, ""
	}
	ratio := float64(newV)/float64(oldV) - 1
	if ratio <= tolerance {
		return false, ""
	}
	return true, fmt.Sprintf("  REGRESSION %s %s: %dns -> %dns (+%.0f%%)", id, point, oldV, newV, ratio*100)
}

// load parses one artifact file.
func load(path string) (*artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(a.Experiments) == 0 {
		return nil, fmt.Errorf("%s: no experiments in artifact", path)
	}
	return &a, nil
}

// orUnknown substitutes a placeholder for empty metadata.
func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}
