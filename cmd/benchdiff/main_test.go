package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeArtifact drops a minimal artifact JSON into a temp dir.
func writeArtifact(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldArtifact = `{
  "date": "2026-08-01", "commit": "aaaa", "go_version": "go1.22",
  "experiments": [
    {"id": "exp1", "elapsed_ns": 900000,
     "timings": [{"min_ns": 1000000, "p50_ns": 1100000, "p95_ns": 1200000, "p99_ns": 1300000, "reps": 5}]},
    {"id": "exp2", "elapsed_ns": 500000, "timings": []}
  ]
}`

func TestBenchdiffIdentityPasses(t *testing.T) {
	p := writeArtifact(t, "old.json", oldArtifact)
	var out, errb strings.Builder
	if code := run([]string{p, p}, &out, &errb); code != 0 {
		t.Fatalf("identity diff exited %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "0 regression(s)") {
		t.Fatalf("summary missing: %s", out.String())
	}
}

func TestBenchdiffFlagsRegression(t *testing.T) {
	oldP := writeArtifact(t, "old.json", oldArtifact)
	newP := writeArtifact(t, "new.json", `{
  "date": "2026-08-02", "commit": "bbbb", "go_version": "go1.22",
  "experiments": [
    {"id": "exp1", "elapsed_ns": 900000,
     "timings": [{"min_ns": 2000000, "p50_ns": 2100000, "p95_ns": 2200000, "p99_ns": 2300000, "reps": 5}]},
    {"id": "exp2", "elapsed_ns": 500000, "timings": []}
  ]
}`)
	var out, errb strings.Builder
	if code := run([]string{oldP, newP}, &out, &errb); code != 1 {
		t.Fatalf("regression diff exited %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION exp1 point 0/min") ||
		!strings.Contains(out.String(), "REGRESSION exp1 point 0/p95") {
		t.Fatalf("regression rows missing: %s", out.String())
	}

	// A generous tolerance lets the same pair pass.
	t.Setenv("WDPT_BENCH_TOLERANCE", "1.5")
	out.Reset()
	if code := run([]string{oldP, newP}, &out, &errb); code != 0 {
		t.Fatalf("tolerant diff exited %d\n%s", code, out.String())
	}
}

// TestBenchdiffMetricsSelection pins WDPT_BENCH_METRICS: a pair whose p95
// regressed but whose min held steady fails the default gate and passes a
// min-only gate (the quick-mode storage A/B configuration, where p95 over
// few reps is the maximum and GC pacing dominates).
func TestBenchdiffMetricsSelection(t *testing.T) {
	oldP := writeArtifact(t, "old.json", oldArtifact)
	newP := writeArtifact(t, "new.json", `{
  "date": "2026-08-02", "commit": "bbbb", "go_version": "go1.22",
  "experiments": [
    {"id": "exp1", "elapsed_ns": 900000,
     "timings": [{"min_ns": 1000000, "p50_ns": 1100000, "p95_ns": 4000000, "p99_ns": 4300000, "reps": 3}]},
    {"id": "exp2", "elapsed_ns": 500000, "timings": []}
  ]
}`)
	var out, errb strings.Builder
	if code := run([]string{oldP, newP}, &out, &errb); code != 1 {
		t.Fatalf("default metrics exited %d, want 1 (p95 regressed)\n%s", code, out.String())
	}
	t.Setenv("WDPT_BENCH_METRICS", "min")
	out.Reset()
	if code := run([]string{oldP, newP}, &out, &errb); code != 0 {
		t.Fatalf("min-only gate exited %d, want 0\n%s", code, out.String())
	}
	t.Setenv("WDPT_BENCH_METRICS", "median")
	if code := run([]string{oldP, newP}, &out, &errb); code != 2 {
		t.Fatalf("bad metrics entry exited %d, want 2", code)
	}
}

func TestBenchdiffNoiseFloorAndFallback(t *testing.T) {
	// exp1 sits below the 100µs noise floor; exp2 has no timings so the
	// whole-experiment elapsed fallback applies and regresses.
	oldP := writeArtifact(t, "old.json", `{
  "date": "2026-08-01",
  "experiments": [
    {"id": "exp1", "elapsed_ns": 1000,
     "timings": [{"min_ns": 1000, "p50_ns": 1000, "p95_ns": 1000, "p99_ns": 1000, "reps": 3}]},
    {"id": "exp2", "elapsed_ns": 1000000, "timings": []}
  ]
}`)
	newP := writeArtifact(t, "new.json", `{
  "date": "2026-08-02",
  "experiments": [
    {"id": "exp1", "elapsed_ns": 9000,
     "timings": [{"min_ns": 9000, "p50_ns": 9000, "p95_ns": 9000, "p99_ns": 9000, "reps": 3}]},
    {"id": "exp2", "elapsed_ns": 3000000, "timings": []}
  ]
}`)
	var out, errb strings.Builder
	if code := run([]string{oldP, newP}, &out, &errb); code != 1 {
		t.Fatalf("exited %d, want 1\n%s", code, out.String())
	}
	if strings.Contains(out.String(), "REGRESSION exp1") {
		t.Fatalf("noise-floor point flagged: %s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION exp2 elapsed") {
		t.Fatalf("elapsed fallback not flagged: %s", out.String())
	}
}

func TestBenchdiffUsageAndParseErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no-args exited %d, want 2", code)
	}
	bad := writeArtifact(t, "bad.json", "{not json")
	if code := run([]string{bad, bad}, &out, &errb); code != 2 {
		t.Fatalf("bad-json exited %d, want 2", code)
	}
	empty := writeArtifact(t, "empty.json", `{"experiments": []}`)
	if code := run([]string{empty, empty}, &out, &errb); code != 2 {
		t.Fatalf("empty artifact exited %d, want 2", code)
	}
	t.Setenv("WDPT_BENCH_TOLERANCE", "zero")
	good := writeArtifact(t, "good.json", oldArtifact)
	if code := run([]string{good, good}, &out, &errb); code != 2 {
		t.Fatalf("bad tolerance exited %d, want 2", code)
	}
}
