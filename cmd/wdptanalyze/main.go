// Command wdptanalyze classifies a well-designed pattern tree in the
// taxonomy of Section 3 of the paper: local treewidth/hypertreewidth,
// interface width, global treewidth/hypertreewidth — and reports which
// column of Table 1 (and hence which evaluation complexity) applies.
//
// Example:
//
//	wdptanalyze -query 'SELECT ?y WHERE (rec(?x,?y) OPT rating(?x,?z))'
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"wdpt"
	"wdpt/internal/core"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wdptanalyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	query := fs.String("query", "", "query text (algebraic or ANS tree format)")
	queryFile := fs.String("queryfile", "", "file containing the query")
	semantic := fs.Int("semantic", 0, "k > 0: additionally decide membership in M(WB(k)) (can be slow; constant-free trees only)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	p, err := loadQuery(*query, *queryFile)
	if err != nil {
		fmt.Fprintf(stderr, "wdptanalyze: %v\n", err)
		return 2
	}
	fmt.Fprintln(stdout, "tree:")
	fmt.Fprintln(stdout, indent(p.String(), "  "))
	fmt.Fprintln(stdout)
	cl := p.Classify()
	fmt.Fprintln(stdout, cl)
	fmt.Fprintln(stdout)
	fmt.Fprintln(stdout, verdict(cl))
	if *semantic > 0 {
		if p.HasConstants() {
			fmt.Fprintln(stdout, "semantic analysis skipped: the tree mentions constants (Section 5.2)")
			return 0
		}
		w, ok := wdpt.MemberWB(p, wdpt.WB(*semantic), wdpt.ApproxOptions{})
		fmt.Fprintf(stdout, "semantic: p ∈ M(WB(%d)): %v\n", *semantic, ok)
		if ok && w != p {
			fmt.Fprintln(stdout, "  witness:")
			fmt.Fprintln(stdout, indent(w.String(), "  "))
		}
	}
	return 0
}

// verdict renders the Table 1 placement implied by the classification.
func verdict(cl core.Classification) string {
	var b strings.Builder
	b.WriteString("Table 1 placement:\n")
	if cl.LocalTW > 0 && cl.InterfaceWidth >= 0 {
		fmt.Fprintf(&b,
			"  EVAL:         tractable (LOGCFL) — p ∈ ℓ-TW(%d) ∩ BI(%d)  [Theorems 6, 7]\n",
			cl.LocalTW, cl.InterfaceWidth)
	} else if cl.LocalHW > 0 {
		fmt.Fprintf(&b,
			"  EVAL:         tractable (LOGCFL) — p ∈ ℓ-HW(%d) ∩ BI(%d)  [Theorems 6, 7]\n",
			cl.LocalHW, cl.InterfaceWidth)
	} else {
		b.WriteString("  EVAL:         no tractability guarantee from local structure\n")
	}
	switch {
	case cl.GlobalTW > 0:
		fmt.Fprintf(&b,
			"  PARTIAL-EVAL: tractable (LOGCFL) — p ∈ g-TW(%d)  [Theorem 8]\n", cl.GlobalTW)
		fmt.Fprintf(&b,
			"  MAX-EVAL:     tractable (LOGCFL) — p ∈ g-TW(%d)  [Theorem 9]\n", cl.GlobalTW)
		fmt.Fprintf(&b,
			"  ⊑ as RHS:     coNP — subsumption INTO p is coNP-decidable  [Theorem 11]\n")
	case cl.GlobalHW > 0:
		fmt.Fprintf(&b,
			"  PARTIAL-EVAL: tractable (LOGCFL) — p ∈ g-HW(%d)  [Theorem 8]\n", cl.GlobalHW)
		fmt.Fprintf(&b,
			"  MAX-EVAL:     tractable (LOGCFL) — p ∈ g-HW(%d)  [Theorem 9]\n", cl.GlobalHW)
	default:
		b.WriteString("  PARTIAL-EVAL: NP-complete in general  [Proposition 1]\n")
		b.WriteString("  MAX-EVAL:     DP-complete in general  [Proposition 4]\n")
	}
	if cl.ProjectionFree {
		b.WriteString("  (projection-free: EVAL is coNP-complete in general, PTIME under local tractability [Theorem 4])\n")
	}
	return b.String()
}

func loadQuery(inline, file string) (*core.PatternTree, error) {
	src := inline
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		src = string(data)
	}
	if strings.TrimSpace(src) == "" {
		return nil, fmt.Errorf("a query is required (-query or -queryfile)")
	}
	if strings.HasPrefix(strings.TrimSpace(strings.ToUpper(src)), "ANS") {
		return wdpt.ParseWDPT(src)
	}
	return wdpt.ParseQuery(src)
}

func indent(s, pre string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = pre + lines[i]
	}
	return strings.Join(lines, "\n")
}
