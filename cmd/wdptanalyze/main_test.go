package main

import (
	"bytes"
	"strings"
	"testing"
)

func analyze(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return out.String() + errOut.String(), code
}

func TestAnalyzeTractableTree(t *testing.T) {
	out, code := analyze(t, "-query",
		`(recorded_by(?x,?y) AND published(?x,"after_2010")) OPT rating(?x,?z)`)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{
		"ℓ-TW(1)", "BI(", "g-TW(1)", "Theorems 6, 7", "Theorem 8", "Theorem 9",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestAnalyzeIntractableTree(t *testing.T) {
	// Root is a 5-clique: local treewidth 4 > probe limit is fine, but the
	// classification must not claim g-TW(1).
	out, code := analyze(t, "-query",
		`ANS(?x) { e(?a,?b), e(?b,?c), e(?c,?a), v(?x) }`)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "g-TW(2)") {
		t.Fatalf("triangle should classify as g-TW(2):\n%s", out)
	}
}

func TestAnalyzeProjectionFree(t *testing.T) {
	out, code := analyze(t, "-query", `a(?x) OPT b(?x, ?y)`)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "projection-free") {
		t.Fatalf("projection-free note missing:\n%s", out)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, code := analyze(t); code == 0 {
		t.Fatal("missing query accepted")
	}
	if _, code := analyze(t, "-query", `(a(?x) OPT b(?z)) AND c(?z)`); code == 0 {
		t.Fatal("non-well-designed query accepted")
	}
	if _, code := analyze(t, "-queryfile", "/does/not/exist"); code == 0 {
		t.Fatal("missing file accepted")
	}
}

func TestAnalyzeSemantic(t *testing.T) {
	out, code := analyze(t, "-semantic", "1", "-query",
		`ANS(?x) { E(?a,?b), E(?b,?a), E(?b,?c), E(?c,?b), E(?c,?d), E(?d,?c), E(?d,?a), E(?a,?d), V(?x) }`)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "p ∈ M(WB(1)): true") {
		t.Fatalf("semantic membership missing:\n%s", out)
	}
	// Constants skip the semantic analysis with an explanation.
	out, code = analyze(t, "-semantic", "1", "-query", `a(?x, "const")`)
	if code != 0 || !strings.Contains(out, "skipped") {
		t.Fatalf("constant handling:\n%s", out)
	}
}
