package main

import (
	"bytes"
	"strings"
	"testing"
)

func approx(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return out.String() + errOut.String(), code
}

const triangleTree = `ANS(?x) { e(?a,?b), e(?b,?c), e(?c,?a), v(?x) }`

func TestApproximateTriangle(t *testing.T) {
	out, code := approx(t, "-k", "1", "-query", triangleTree)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "WB(1)-approximation") || !strings.Contains(out, "ANS(?x)") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestApproximateAllCandidates(t *testing.T) {
	out, code := approx(t, "-k", "1", "-all", "-query", triangleTree)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "candidate 1") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestMembership(t *testing.T) {
	out, code := approx(t, "-k", "1", "-member", "-query", triangleTree)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "p ∈ M(WB(1)): false") {
		t.Fatalf("triangle wrongly classified:\n%s", out)
	}
	// A tractable tree witnesses itself.
	out, code = approx(t, "-k", "1", "-member", "-query", `ANS(?x) { e(?x, ?y) }`)
	if code != 0 || !strings.Contains(out, "p ∈ M(WB(1)): true") {
		t.Fatalf("edge tree should be a member:\n%s", out)
	}
}

func TestUnionModes(t *testing.T) {
	q := `SELECT ?x WHERE (e(?a,?b) AND e(?b,?c) AND e(?c,?a) AND v(?x))
	      UNION
	      SELECT ?x WHERE (e(?x, ?w))`
	out, code := approx(t, "-k", "1", "-union", "-query", q)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "UWB(1)-approximation") {
		t.Fatalf("output:\n%s", out)
	}
	out, code = approx(t, "-k", "1", "-union", "-member", "-query", q)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "φ ∈ M(UWB(1)): false") {
		t.Fatalf("triangle member wrongly classified:\n%s", out)
	}
}

func TestApproxErrors(t *testing.T) {
	cases := [][]string{
		{},                                     // no query
		{"-query", "a(?x) AND"},                // parse error
		{"-queryfile", "/does/not/exist"},      // missing file
		{"-union", "-query", "a(?x) UNION b("}, // union parse error
	}
	for i, args := range cases {
		if _, code := approx(t, args...); code == 0 {
			t.Fatalf("case %d (%v): expected failure", i, args)
		}
	}
}
