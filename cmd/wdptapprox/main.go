// Command wdptapprox computes WB(k)-approximations of well-designed pattern
// trees and decides membership in M(WB(k)) (Sections 5-6 of the paper).
//
// Examples:
//
//	wdptapprox -k 1 -query 'ANS(?x) { e(?a,?b) e(?b,?c) e(?c,?a) v(?x) }'
//	wdptapprox -k 1 -member -query '...'
//	wdptapprox -k 1 -union -query 'SELECT ?x WHERE ... UNION SELECT ?x WHERE ...'
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"wdpt"
	"wdpt/internal/core"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wdptapprox", flag.ContinueOnError)
	fs.SetOutput(stderr)
	query := fs.String("query", "", "query text (algebraic, ANS tree format, or UNION query with -union)")
	queryFile := fs.String("queryfile", "", "file containing the query")
	k := fs.Int("k", 1, "width parameter of the well-behaved class WB(k) = g-TW(k)")
	member := fs.Bool("member", false, "decide membership in M(WB(k)) instead of approximating")
	all := fs.Bool("all", false, "print all maximal approximation candidates")
	union := fs.Bool("union", false, "treat the query as a union of WDPTs (UWB(k) machinery)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := approxMain(stdout, *query, *queryFile, *k, *member, *all, *union); err != nil {
		fmt.Fprintf(stderr, "wdptapprox: %v\n", err)
		return 2
	}
	return 0
}

func approxMain(out io.Writer, query, queryFile string, k int, member, all, union bool) error {
	src, err := loadSource(query, queryFile)
	if err != nil {
		return err
	}
	if union {
		return runUnion(out, src, k, member)
	}
	p, err := parseTree(src)
	if err != nil {
		return err
	}
	if member {
		w, ok := wdpt.MemberWB(p, wdpt.WB(k), wdpt.ApproxOptions{})
		fmt.Fprintf(out, "p ∈ M(WB(%d)): %v\n", k, ok)
		if ok {
			fmt.Fprintln(out, "witness (subsumption-equivalent, globally tractable):")
			fmt.Fprintln(out, wdpt.FormatWDPT(w))
		}
		return nil
	}
	if all {
		cands := wdpt.ApproximateAll(p, wdpt.WB(k), wdpt.ApproxOptions{})
		fmt.Fprintf(out, "%d maximal WB(%d)-approximation candidate(s):\n", len(cands), k)
		for i, c := range cands {
			fmt.Fprintf(out, "-- candidate %d (size %d):\n%s", i+1, c.Size(), wdpt.FormatWDPT(c))
		}
		return nil
	}
	ap, err := wdpt.Approximate(p, wdpt.WB(k), wdpt.ApproxOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "WB(%d)-approximation (size %d, input size %d):\n", k, ap.Size(), p.Size())
	fmt.Fprintln(out, wdpt.FormatWDPT(ap))
	return nil
}

func runUnion(out io.Writer, src string, k int, member bool) error {
	u, err := wdpt.ParseUnionQuery(src)
	if err != nil {
		return err
	}
	if member {
		witnesses, ok, exact := wdpt.MemberUnionWB(u, wdpt.TW(k), 0)
		fmt.Fprintf(out, "φ ∈ M(UWB(%d)): %v (exact: %v)\n", k, ok, exact)
		if ok {
			fmt.Fprintln(out, "witness union of tractable CQs:")
			for _, q := range witnesses {
				fmt.Fprintln(out, "  "+q.String())
			}
		}
		return nil
	}
	qs, err := wdpt.ApproximateUnion(u, wdpt.TW(k), 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "UWB(%d)-approximation: union of %d CQ(s):\n", k, len(qs))
	for _, q := range qs {
		fmt.Fprintln(out, "  "+q.String())
	}
	return nil
}

func loadSource(inline, file string) (string, error) {
	src := inline
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return "", err
		}
		src = string(data)
	}
	if strings.TrimSpace(src) == "" {
		return "", fmt.Errorf("a query is required (-query or -queryfile)")
	}
	return src, nil
}

func parseTree(src string) (*core.PatternTree, error) {
	if strings.HasPrefix(strings.TrimSpace(strings.ToUpper(src)), "ANS") {
		return wdpt.ParseWDPT(src)
	}
	return wdpt.ParseQuery(src)
}
