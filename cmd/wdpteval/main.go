// Command wdpteval evaluates a well-designed pattern tree over a database.
//
// The query is given either in the algebraic {AND, OPT} syntax
// ("SELECT ?x WHERE (a(?x) OPT b(?x, ?y))") or in the explicit tree format
// ("ANS(?x) { a(?x) { b(?x, ?y) } }"); the database is a file of ground
// atoms, one per line ("a(1). b(1, 2)."). Modes:
//
//	enumerate  print p(D) (default)
//	maximal    print p_m(D), the maximal-mappings semantics
//	exact      decide h ∈ p(D) for the mapping given with -map
//	partial    decide whether h extends to an answer
//	max        decide h ∈ p_m(D)
//
// Every mode routes through the consolidated Solve API, so concurrency,
// cancellation, and resource budgets are uniform:
//
//	-parallelism n    Solve worker pool (1 = sequential, 0 = NumCPU); answers
//	                  are byte-identical at every value
//	-timeout d        cancel the evaluation after d (e.g. 30s); exits non-zero
//	-budget-tuples n  fail (or degrade) after materializing n intermediate
//	                  tuples
//	-max-answers n    truncate enumeration after n answers; the partial
//	                  answer set is still printed
//	-fallback         on a tripped budget, degrade down the
//	                  exact → maximal → partial ladder instead of failing
//	                  (docs/ROBUSTNESS.md); degraded output is marked
//
// Persistence (docs/STORAGE.md): -snapshot loads the database from a
// durable binary snapshot instead of parsing text (mutually exclusive with
// -db); -snapshot-save writes the loaded database to a snapshot through the
// crash-safe writer after loading. With -snapshot-save and no query, the
// tool saves the snapshot and exits 0 — the text-to-snapshot conversion
// mode scripts use.
//
// Exit codes: 0 success, 2 usage or evaluation error, 3 deadline exceeded,
// 4 tuple budget exceeded, 5 answer limit reached (partial answers were
// printed).
//
// Observability (see docs/OBSERVABILITY.md):
//
//	-explain       print the plan the engine chose for each tree node
//	-stats         print the engine work counters after evaluating
//	-json          emit one JSON document (answers, plans, counters)
//	-trace         collect per-evaluation spans and print the span tree
//	               (with -json, embed it in the document under "trace" —
//	               the same shape wdptd serves for ?trace=1)
//	-cpuprofile f  write a pprof CPU profile to f
//	-memprofile f  write a pprof heap profile to f
//	-exectrace f   write a runtime execution trace to f
//
// Example:
//
//	wdpteval -db data.txt -query 'SELECT ?y WHERE (rec(?x,?y) OPT rating(?x,?z))'
//	wdpteval -db data.txt -queryfile q.wdpt -mode partial -map 'y=Caribou'
//	wdpteval -db data.txt -queryfile q.wdpt -explain -stats -json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"wdpt"
	"wdpt/internal/approx"
	"wdpt/internal/core"
	"wdpt/internal/cqeval"
	"wdpt/internal/db"
	"wdpt/internal/db/snapshot"
	"wdpt/internal/obs"
	"wdpt/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// options collects the parsed command line.
type options struct {
	query, queryFile, dbFile string
	snapshot, snapshotSave   string
	mode, mapping, engine    string
	classify                 bool
	explain                  bool
	stats                    bool
	trace                    bool
	jsonOut                  bool
	optimize                 int
	parallelism              int
	timeout                  time.Duration
	budgetTuples             int64
	maxAnswers               int64
	fallback                 bool
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wdpteval", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.StringVar(&o.query, "query", "", "query text (algebraic or ANS tree format)")
	fs.StringVar(&o.queryFile, "queryfile", "", "file containing the query")
	fs.StringVar(&o.dbFile, "db", "", "database file of ground atoms (required unless -snapshot)")
	fs.StringVar(&o.snapshot, "snapshot", "", "load the database from this binary snapshot instead of -db (docs/STORAGE.md)")
	fs.StringVar(&o.snapshotSave, "snapshot-save", "", "after loading, durably write the database to this snapshot path; with no query, save and exit")
	fs.StringVar(&o.mode, "mode", "enumerate", "enumerate|maximal|exact|partial|max")
	fs.StringVar(&o.mapping, "map", "", "partial mapping 'x=a,y=b' for the decision modes")
	fs.StringVar(&o.engine, "engine", "auto", "CQ engine: auto|naive|yannakakis|decomposition|hypertree")
	fs.BoolVar(&o.classify, "classify", false, "print the structural classification before evaluating")
	fs.BoolVar(&o.explain, "explain", false, "print the chosen evaluation plan for each tree node")
	fs.BoolVar(&o.stats, "stats", false, "print the engine work counters after evaluating")
	fs.BoolVar(&o.trace, "trace", false, "collect per-evaluation spans and print the span tree (with -json, embed it under \"trace\")")
	fs.BoolVar(&o.jsonOut, "json", false, "emit one JSON document instead of text")
	fs.IntVar(&o.optimize, "optimize", 0, "k > 0: route partial/max modes through the Corollary 2 M(WB(k)) witness when one exists")
	fs.IntVar(&o.parallelism, "parallelism", 1, "Solve worker pool size (1 = sequential, 0 = NumCPU)")
	fs.DurationVar(&o.timeout, "timeout", 0, "cancel the evaluation after this duration (0 = none)")
	fs.Int64Var(&o.budgetTuples, "budget-tuples", 0, "fail (or degrade with -fallback) after materializing this many intermediate tuples (0 = unlimited)")
	fs.Int64Var(&o.maxAnswers, "max-answers", 0, "truncate enumeration after this many answers (0 = unlimited)")
	fs.BoolVar(&o.fallback, "fallback", false, "on a tripped budget, degrade exact→maximal→partial instead of failing")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	traceFile := fs.String("exectrace", "", "write a runtime execution trace to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stop, err := obs.Profiles{CPUFile: *cpuProfile, MemFile: *memProfile, TraceFile: *traceFile}.Start()
	if err != nil {
		fmt.Fprintf(stderr, "wdpteval: %v\n", err)
		return 2
	}
	err = evalMain(stdout, o)
	if serr := stop(); err == nil {
		err = serr
	}
	if err != nil {
		fmt.Fprintf(stderr, "wdpteval: %v\n", err)
		return exitCode(err)
	}
	return 0
}

// exitCode maps guard trips to distinct exit codes so scripts can tell a
// resource-limit stop (retryable with a bigger budget or -fallback) from a
// genuine evaluation error. The taxonomy lives in internal/report so wdptd
// classifies the same errors identically (as HTTP statuses).
var exitCode = report.ExitCode

func evalMain(out io.Writer, o options) error {
	d, err := loadDatabaseSource(o)
	if err != nil {
		return err
	}
	if o.snapshotSave != "" {
		if err := snapshot.Write(o.snapshotSave, d); err != nil {
			return fmt.Errorf("saving snapshot: %w", err)
		}
		if o.query == "" && o.queryFile == "" {
			// Conversion mode: -snapshot-save with no query just persists the
			// loaded database and exits.
			fmt.Fprintf(out, "snapshot saved to %s\n", o.snapshotSave)
			return nil
		}
	}
	p, err := loadQuery(o.query, o.queryFile)
	if err != nil {
		return err
	}
	eng, err := pickEngine(o.engine)
	if err != nil {
		return err
	}
	var st *wdpt.Stats
	if o.stats || o.jsonOut || o.trace {
		st = wdpt.NewStats()
		eng = wdpt.WithStats(eng, st)
	}
	var tr *obs.Collector
	if o.trace {
		tr = &obs.Collector{}
		st.WithTrace(tr)
	}
	par := o.parallelism
	if par == 0 {
		par = runtime.NumCPU()
	}
	ctx := context.Background()
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}
	// The root span covers everything after loading: classification,
	// explain, and the evaluation itself. Inert unless -trace is on.
	root := st.StartSpan("eval")
	rep := report.Report{Mode: o.mode, Engine: o.engine, Parallelism: par}
	if o.classify {
		rep.Classification = p.Classify().String()
		if !o.jsonOut {
			fmt.Fprintln(out, rep.Classification)
			fmt.Fprintln(out)
		}
	}
	if o.explain {
		// Explain before evaluating, so the plan cache the diagnostic pass
		// leaves warm mirrors what evaluation will reuse; Explain itself
		// records no counters.
		explainSpan := root.Child("explain")
		rep.Plans = p.ExplainNodes(d, eng)
		explainSpan.End()
		if !o.jsonOut {
			fmt.Fprintf(out, "EXPLAIN (%d node(s)):\n", len(rep.Plans))
			for _, plan := range rep.Plans {
				fmt.Fprint(out, plan.Format())
			}
			fmt.Fprintln(out)
		}
	}
	budget := wdpt.Budget{MaxTuples: o.budgetTuples, MaxAnswers: o.maxAnswers}
	// evalErr carries a trip (e.g. the answer limit) whose partial result is
	// still emitted below; run maps it to the documented exit code.
	var evalErr error
	solveSpan := root.Child("solve")
	switch o.mode {
	case "enumerate":
		res, err := p.Solve(ctx, d, wdpt.SolveOptions{
			Mode: wdpt.ModeEnumerate, Engine: eng, Parallelism: par,
			Budget: budget, Fallback: o.fallback,
		})
		if err != nil && !errors.Is(err, wdpt.ErrAnswerLimit) {
			return err
		}
		evalErr = err
		noteDegraded(&rep, out, o.jsonOut, res)
		rep.SetAnswers(res.Answers)
		if !o.jsonOut {
			fmt.Fprintf(out, "p(D): %d answer(s)\n", *rep.AnswerCount)
			for _, h := range rep.Answers {
				fmt.Fprintln(out, "  "+h.String())
			}
		}
	case "maximal":
		// The historical maximal path drives the backtracking solver, not
		// the engine, so Engine stays nil and the counters land on Stats.
		res, err := p.Solve(ctx, d, wdpt.SolveOptions{
			Mode: wdpt.ModeMaximal, Stats: st, Parallelism: par,
			Budget: budget, Fallback: o.fallback,
		})
		if err != nil && !errors.Is(err, wdpt.ErrAnswerLimit) {
			return err
		}
		evalErr = err
		noteDegraded(&rep, out, o.jsonOut, res)
		rep.SetAnswers(res.Answers)
		if !o.jsonOut {
			fmt.Fprintf(out, "p_m(D): %d answer(s)\n", *rep.AnswerCount)
			for _, h := range rep.Answers {
				fmt.Fprintln(out, "  "+h.String())
			}
		}
	case "exact", "partial", "max":
		h, err := parseMapping(o.mapping)
		if err != nil {
			return err
		}
		var opt *approx.Optimized
		if o.optimize > 0 && o.mode != "exact" {
			opt = wdpt.Optimize(p, wdpt.WB(o.optimize), wdpt.ApproxOptions{Parallelism: par})
			tractable := opt.Tractable()
			rep.OptimizerTractable = &tractable
			if !o.jsonOut {
				fmt.Fprintf(out, "(optimizer: tractable witness found: %v)\n", tractable)
			}
		}
		var result bool
		if opt != nil {
			// The Corollary 2 witness has its own tractable evaluators.
			if err := ctx.Err(); err != nil {
				return err
			}
			switch o.mode {
			case "partial":
				result = opt.PartialEval(d, h, eng)
			case "max":
				result = opt.MaxEval(d, h, eng)
			}
		} else {
			mode := wdpt.ModeExact
			switch o.mode {
			case "partial":
				mode = wdpt.ModePartial
			case "max":
				mode = wdpt.ModeMax
			}
			res, err := p.Solve(ctx, d, wdpt.SolveOptions{
				Mode: mode, Mapping: h, Engine: eng, Parallelism: par,
				Budget: budget, Fallback: o.fallback,
			})
			if err != nil {
				return err
			}
			noteDegraded(&rep, out, o.jsonOut, res)
			result = res.Holds
		}
		rep.SetResult(result)
		if !o.jsonOut {
			fmt.Fprintln(out, result)
		}
	default:
		return fmt.Errorf("unknown mode %q", o.mode)
	}
	solveSpan.End()
	if o.stats {
		rep.Counters = st.Snapshot()
		if !o.jsonOut {
			fmt.Fprintf(out, "\ncounters:\n%s", st.Format())
		}
	}
	if o.trace {
		// Close the root before reconstructing, so its duration covers the
		// whole evaluation — the same contract as wdptd's ?trace=1.
		root.End()
		rep.Trace = obs.BuildSpanTree(tr.Spans())
		if !o.jsonOut {
			fmt.Fprintf(out, "\ntrace:\n%s", obs.FormatSpanTree(rep.Trace))
		}
	}
	if o.jsonOut {
		if err := report.Encode(out, rep); err != nil {
			return err
		}
	}
	return evalErr
}

// noteDegraded records a Degraded result on the report and, in text mode,
// prints the marker before the answers so truncated or fallback output is
// never mistaken for the full semantics.
func noteDegraded(rep *report.Report, out io.Writer, jsonOut bool, res wdpt.SolveResult) {
	if rep.NoteDegraded(res) && !jsonOut {
		fmt.Fprintf(out, "(degraded: result carries %s semantics)\n", rep.DegradedMode)
	}
}

func loadQuery(inline, file string) (*core.PatternTree, error) {
	src := inline
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		src = string(data)
	}
	if strings.TrimSpace(src) == "" {
		return nil, fmt.Errorf("a query is required (-query or -queryfile)")
	}
	if strings.HasPrefix(strings.TrimSpace(strings.ToUpper(src)), "ANS") {
		return wdpt.ParseWDPT(src)
	}
	return wdpt.ParseQuery(src)
}

// loadDatabaseSource resolves the database from whichever source the flags
// name: -snapshot reads the durable binary format through the paranoid
// loader, -db parses the line-oriented text format. Exactly one is required.
func loadDatabaseSource(o options) (*wdpt.Database, error) {
	switch {
	case o.snapshot != "" && o.dbFile != "":
		return nil, fmt.Errorf("-db and -snapshot are mutually exclusive")
	case o.snapshot != "":
		d, err := snapshot.Read(o.snapshot, db.DefaultBackend())
		if err != nil {
			return nil, fmt.Errorf("loading snapshot: %w", err)
		}
		return d, nil
	case o.dbFile != "":
		data, err := os.ReadFile(o.dbFile)
		if err != nil {
			return nil, err
		}
		return wdpt.ParseDatabase(string(data))
	}
	return nil, fmt.Errorf("a database is required (-db or -snapshot)")
}

func parseMapping(s string) (wdpt.Mapping, error) {
	h := wdpt.Mapping{}
	if strings.TrimSpace(s) == "" {
		return h, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" {
			return nil, fmt.Errorf("bad -map entry %q (want var=value)", part)
		}
		h[strings.TrimPrefix(kv[0], "?")] = kv[1]
	}
	return h, nil
}

func pickEngine(name string) (wdpt.Engine, error) {
	switch name {
	case "auto":
		return cqeval.Auto(), nil
	case "naive":
		return cqeval.Naive(), nil
	case "yannakakis":
		return cqeval.Yannakakis(), nil
	case "decomposition":
		return cqeval.Decomposition(), nil
	case "hypertree":
		return cqeval.Hypertree(3), nil
	}
	return nil, fmt.Errorf("unknown engine %q", name)
}
