// Command wdpteval evaluates a well-designed pattern tree over a database.
//
// The query is given either in the algebraic {AND, OPT} syntax
// ("SELECT ?x WHERE (a(?x) OPT b(?x, ?y))") or in the explicit tree format
// ("ANS(?x) { a(?x) { b(?x, ?y) } }"); the database is a file of ground
// atoms, one per line ("a(1). b(1, 2)."). Modes:
//
//	enumerate  print p(D) (default)
//	maximal    print p_m(D), the maximal-mappings semantics
//	exact      decide h ∈ p(D) for the mapping given with -map
//	partial    decide whether h extends to an answer
//	max        decide h ∈ p_m(D)
//
// Example:
//
//	wdpteval -db data.txt -query 'SELECT ?y WHERE (rec(?x,?y) OPT rating(?x,?z))'
//	wdpteval -db data.txt -queryfile q.wdpt -mode partial -map 'y=Caribou'
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"wdpt"
	"wdpt/internal/approx"
	"wdpt/internal/core"
	"wdpt/internal/cqeval"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wdpteval", flag.ContinueOnError)
	fs.SetOutput(stderr)
	query := fs.String("query", "", "query text (algebraic or ANS tree format)")
	queryFile := fs.String("queryfile", "", "file containing the query")
	dbFile := fs.String("db", "", "database file of ground atoms (required)")
	mode := fs.String("mode", "enumerate", "enumerate|maximal|exact|partial|max")
	mapping := fs.String("map", "", "partial mapping 'x=a,y=b' for the decision modes")
	engineName := fs.String("engine", "auto", "CQ engine: auto|naive|yannakakis|decomposition|hypertree")
	classify := fs.Bool("classify", false, "print the structural classification before evaluating")
	optimize := fs.Int("optimize", 0, "k > 0: route partial/max modes through the Corollary 2 M(WB(k)) witness when one exists")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := evalMain(stdout, *query, *queryFile, *dbFile, *mode, *mapping, *engineName, *classify, *optimize); err != nil {
		fmt.Fprintf(stderr, "wdpteval: %v\n", err)
		return 2
	}
	return 0
}

func evalMain(out io.Writer, query, queryFile, dbFile, mode, mapping, engineName string, classify bool, optimize int) error {
	p, err := loadQuery(query, queryFile)
	if err != nil {
		return err
	}
	d, err := loadDatabase(dbFile)
	if err != nil {
		return err
	}
	eng, err := pickEngine(engineName)
	if err != nil {
		return err
	}
	if classify {
		fmt.Fprintln(out, p.Classify())
		fmt.Fprintln(out)
	}
	switch mode {
	case "enumerate":
		answers := wdpt.SortSolutions(p.EvaluateWith(d, eng))
		fmt.Fprintf(out, "p(D): %d answer(s)\n", len(answers))
		for _, h := range answers {
			fmt.Fprintln(out, "  "+h.String())
		}
	case "maximal":
		answers := wdpt.SortSolutions(p.EvaluateMaximal(d))
		fmt.Fprintf(out, "p_m(D): %d answer(s)\n", len(answers))
		for _, h := range answers {
			fmt.Fprintln(out, "  "+h.String())
		}
	case "exact", "partial", "max":
		h, err := parseMapping(mapping)
		if err != nil {
			return err
		}
		var opt *approx.Optimized
		if optimize > 0 && mode != "exact" {
			opt = wdpt.Optimize(p, wdpt.WB(optimize), wdpt.ApproxOptions{})
			fmt.Fprintf(out, "(optimizer: tractable witness found: %v)\n", opt.Tractable())
		}
		var result bool
		switch mode {
		case "exact":
			result = p.EvalInterface(d, h, eng)
		case "partial":
			if opt != nil {
				result = opt.PartialEval(d, h, eng)
			} else {
				result = p.PartialEval(d, h, eng)
			}
		case "max":
			if opt != nil {
				result = opt.MaxEval(d, h, eng)
			} else {
				result = p.MaxEval(d, h, eng)
			}
		}
		fmt.Fprintln(out, result)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	return nil
}

func loadQuery(inline, file string) (*core.PatternTree, error) {
	src := inline
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		src = string(data)
	}
	if strings.TrimSpace(src) == "" {
		return nil, fmt.Errorf("a query is required (-query or -queryfile)")
	}
	if strings.HasPrefix(strings.TrimSpace(strings.ToUpper(src)), "ANS") {
		return wdpt.ParseWDPT(src)
	}
	return wdpt.ParseQuery(src)
}

func loadDatabase(file string) (*wdpt.Database, error) {
	if file == "" {
		return nil, fmt.Errorf("a database file is required (-db)")
	}
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	return wdpt.ParseDatabase(string(data))
}

func parseMapping(s string) (wdpt.Mapping, error) {
	h := wdpt.Mapping{}
	if strings.TrimSpace(s) == "" {
		return h, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" {
			return nil, fmt.Errorf("bad -map entry %q (want var=value)", part)
		}
		h[strings.TrimPrefix(kv[0], "?")] = kv[1]
	}
	return h, nil
}

func pickEngine(name string) (wdpt.Engine, error) {
	switch name {
	case "auto":
		return cqeval.Auto(), nil
	case "naive":
		return cqeval.Naive(), nil
	case "yannakakis":
		return cqeval.Yannakakis(), nil
	case "decomposition":
		return cqeval.Decomposition(), nil
	case "hypertree":
		return cqeval.Hypertree(3), nil
	}
	return nil, fmt.Errorf("unknown engine %q", name)
}
