package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeMusicDB(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "music.db")
	err := os.WriteFile(path, []byte(`
		recorded_by(Our_love, Caribou).
		published(Our_love, after_2010).
		recorded_by(Swim, Caribou).
		published(Swim, after_2010).
		rating(Swim, "2").
	`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return path
}

const musicQuery = `(recorded_by(?x,?y) AND published(?x,"after_2010")) OPT rating(?x,?z)`

func TestRunEnumerate(t *testing.T) {
	db := writeMusicDB(t)
	var out, errOut bytes.Buffer
	if code := run([]string{"-db", db, "-query", musicQuery}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "2 answer(s)") || !strings.Contains(s, "z -> 2") {
		t.Fatalf("output:\n%s", s)
	}
}

func TestRunModes(t *testing.T) {
	db := writeMusicDB(t)
	cases := []struct {
		mode, mapping, want string
	}{
		{"partial", "y=Caribou", "true"},
		{"partial", "y=Nobody", "false"},
		{"exact", "x=Swim,y=Caribou,z=2", "true"},
		{"exact", "x=Swim,y=Caribou", "false"},
		{"max", "x=Swim,y=Caribou,z=2", "true"},
		{"maximal", "", "2 answer(s)"},
	}
	for _, c := range cases {
		var out, errOut bytes.Buffer
		code := run([]string{"-db", db, "-query", musicQuery, "-mode", c.mode, "-map", c.mapping}, &out, &errOut)
		if code != 0 {
			t.Fatalf("mode %s: exit %d: %s", c.mode, code, errOut.String())
		}
		if !strings.Contains(out.String(), c.want) {
			t.Fatalf("mode %s map %q: output %q, want %q", c.mode, c.mapping, out.String(), c.want)
		}
	}
}

func TestRunTreeFormatAndClassify(t *testing.T) {
	db := writeMusicDB(t)
	query := `ANS(?x, ?y) { recorded_by(?x, ?y) { rating(?x, ?z) } }`
	var out, errOut bytes.Buffer
	if code := run([]string{"-db", db, "-query", query, "-classify"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "interface width") {
		t.Fatalf("classification missing:\n%s", out.String())
	}
}

func TestRunEngines(t *testing.T) {
	db := writeMusicDB(t)
	for _, eng := range []string{"auto", "naive", "yannakakis", "decomposition"} {
		var out, errOut bytes.Buffer
		code := run([]string{"-db", db, "-query", musicQuery, "-mode", "partial", "-map", "y=Caribou", "-engine", eng}, &out, &errOut)
		if code != 0 || !strings.Contains(out.String(), "true") {
			t.Fatalf("engine %s: exit %d output %q err %q", eng, code, out.String(), errOut.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	db := writeMusicDB(t)
	cases := [][]string{
		{"-query", musicQuery},             // missing db
		{"-db", db},                        // missing query
		{"-db", db, "-query", "a(?x) AND"}, // parse error
		{"-db", db, "-query", musicQuery, "-mode", "bogus"},                 // bad mode
		{"-db", db, "-query", musicQuery, "-engine", "bogus"},               // bad engine
		{"-db", db, "-query", musicQuery, "-mode", "exact", "-map", "oops"}, // bad mapping
		{"-db", "/does/not/exist", "-query", musicQuery},                    // missing file
		{"-queryfile", "/does/not/exist", "-db", db},                        // missing query file
	}
	for i, args := range cases {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code == 0 {
			t.Fatalf("case %d (%v): expected failure", i, args)
		}
	}
}

func TestQueryFromFile(t *testing.T) {
	db := writeMusicDB(t)
	qf := filepath.Join(t.TempDir(), "q.txt")
	if err := os.WriteFile(qf, []byte(musicQuery), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-db", db, "-queryfile", qf}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
}

func TestRunOptimizedModes(t *testing.T) {
	// Symmetric 4-cycle tree (member of M(WB(1))), database file built from
	// its vocabulary.
	db := filepath.Join(t.TempDir(), "g.db")
	if err := os.WriteFile(db, []byte(`
		E(a, b). E(b, a). E(b, c). E(c, b).
		E(c, d). E(d, c). E(d, a). E(a, d).
		V(q).
	`), 0o644); err != nil {
		t.Fatal(err)
	}
	query := `ANS(?x) {
		e2(?x, ?x)
	}`
	_ = query
	cycle := `ANS(?x) { E(?a,?b), E(?b,?a), E(?b,?c), E(?c,?b), E(?c,?d), E(?d,?c), E(?d,?a), E(?a,?d), V(?x) }`
	var out, errOut bytes.Buffer
	code := run([]string{"-db", db, "-query", cycle, "-mode", "partial", "-map", "x=q", "-optimize", "1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "witness found: true") || !strings.Contains(out.String(), "true") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunHypertreeEngine(t *testing.T) {
	dbf := writeMusicDB(t)
	var out, errOut bytes.Buffer
	code := run([]string{"-db", dbf, "-query", musicQuery, "-mode", "partial", "-map", "y=Caribou", "-engine", "hypertree"}, &out, &errOut)
	if code != 0 || !strings.Contains(out.String(), "true") {
		t.Fatalf("exit %d output %q err %q", code, out.String(), errOut.String())
	}
}

func TestRunExitCodes(t *testing.T) {
	db := writeMusicDB(t)
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"deadline", []string{"-db", db, "-query", musicQuery, "-timeout", "1ns"}, 3},
		{"tuple-budget", []string{"-db", db, "-query", musicQuery, "-budget-tuples", "1"}, 4},
		{"answer-limit", []string{"-db", db, "-query", musicQuery, "-max-answers", "1"}, 5},
	}
	for _, c := range cases {
		var out, errOut bytes.Buffer
		if code := run(c.args, &out, &errOut); code != c.want {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", c.name, code, c.want, errOut.String())
		}
	}
}

func TestRunAnswerLimitKeepsPartialAnswers(t *testing.T) {
	db := writeMusicDB(t)
	var out, errOut bytes.Buffer
	code := run([]string{"-db", db, "-query", musicQuery, "-max-answers", "1", "-json"}, &out, &errOut)
	if code != 5 {
		t.Fatalf("exit %d, want 5: %s", code, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, `"degraded": true`) || !strings.Contains(s, `"degraded_mode": "enumerate"`) {
		t.Fatalf("truncated run not marked degraded:\n%s", s)
	}
	if !strings.Contains(s, `"answers"`) {
		t.Fatalf("truncated run dropped its partial answer set:\n%s", s)
	}
}

func TestRunFallbackDegradesInsteadOfFailing(t *testing.T) {
	db := writeMusicDB(t)
	var out, errOut bytes.Buffer
	code := run([]string{"-db", db, "-query", musicQuery, "-max-answers", "1", "-fallback", "-json"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, want 0 with -fallback: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), `"degraded": true`) {
		t.Fatalf("degraded run not marked in JSON:\n%s", out.String())
	}
}

func TestRunNoBudgetOmitsDegradedField(t *testing.T) {
	db := writeMusicDB(t)
	var out, errOut bytes.Buffer
	if code := run([]string{"-db", db, "-query", musicQuery, "-json"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if strings.Contains(out.String(), `"degraded"`) {
		t.Fatalf("unbudgeted run emitted a degraded field:\n%s", out.String())
	}
}

func TestRunSnapshotSaveAndLoad(t *testing.T) {
	db := writeMusicDB(t)
	snap := filepath.Join(t.TempDir(), "music.snap")

	// Conversion mode: -snapshot-save with no query persists and exits 0.
	var out, errOut bytes.Buffer
	if code := run([]string{"-db", db, "-snapshot-save", snap}, &out, &errOut); code != 0 {
		t.Fatalf("save exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "snapshot saved to") {
		t.Fatalf("save output:\n%s", out.String())
	}

	// The snapshot-loaded database must answer byte-identically to the
	// text-parsed one (JSON bodies compared verbatim).
	var fromText, fromSnap bytes.Buffer
	if code := run([]string{"-db", db, "-query", musicQuery, "-json"}, &fromText, &errOut); code != 0 {
		t.Fatalf("text eval exit %d: %s", code, errOut.String())
	}
	if code := run([]string{"-snapshot", snap, "-query", musicQuery, "-json"}, &fromSnap, &errOut); code != 0 {
		t.Fatalf("snapshot eval exit %d: %s", code, errOut.String())
	}
	if !bytes.Equal(fromText.Bytes(), fromSnap.Bytes()) {
		t.Fatalf("snapshot answers diverge from text answers:\n%s\nvs\n%s", fromText.String(), fromSnap.String())
	}
}

func TestRunSnapshotFlagErrors(t *testing.T) {
	db := writeMusicDB(t)
	var out, errOut bytes.Buffer
	if code := run([]string{"-db", db, "-snapshot", "x.snap", "-query", musicQuery}, &out, &errOut); code != 2 {
		t.Fatalf("-db with -snapshot: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "mutually exclusive") {
		t.Fatalf("stderr: %s", errOut.String())
	}
	errOut.Reset()
	if code := run([]string{"-snapshot", filepath.Join(t.TempDir(), "missing.snap"), "-query", musicQuery}, &out, &errOut); code != 2 {
		t.Fatalf("missing snapshot: exit %d, want 2", code)
	}
}
