// Command wdptbench regenerates the paper's tables and figures as text
// tables: one experiment per artifact (see DESIGN.md §4 and EXPERIMENTS.md).
//
// Usage:
//
//	wdptbench -list
//	wdptbench                 # run everything (about a minute)
//	wdptbench -run E2,E8      # run selected experiments
//	wdptbench -quick          # smoke-test sizes (-short is an alias)
//	wdptbench -json           # also write the BENCH_<date>.json artifact
//	wdptbench -parallelism 0  # Solve worker pool sized to NumCPU
//	wdptbench -store mem      # run on the legacy string-map backend
//	wdptbench -store mem,col  # storage A/B: both backends in one process
//	wdptbench -snapshot dir   # snapshot reload vs text reparse micro-bench
//
// The -snapshot mode is a standalone micro-benchmark of the persistence
// layer (docs/STORAGE.md): it generates the largest synthetic music
// fixture, persists it once through the crash-safe snapshot writer into
// dir, then times text reparsing against snapshot reloading (best of -reps
// rounds each), verifies the reloaded database is identical, and prints the
// speedup. It exits non-zero when the reloaded data diverges or the speedup
// falls below WDPT_SNAP_MIN_SPEEDUP (default 1.5) — the CI regression gate
// for "reload must beat reparse".
//
// With -json, the run additionally writes a BENCH_<date><suffix>.json
// metrics artifact into -out (default "."): per-experiment wall-clock time,
// the engine work counters of docs/OBSERVABILITY.md, per-measured-point
// latency summaries (min plus p50/p95/p99 over the repetitions), and the
// rendered rows — the machine-readable companion to EXPERIMENTS.md. The
// artifact is stamped with the commit (WDPT_COMMIT, falling back to
// git rev-parse HEAD, empty if unavailable) and the Go version, so
// scripts/benchdiff.sh can label what it compares. The -suffix flag
// distinguishes artifacts of the same day (CI writes one per parallelism
// level). The -cpuprofile, -memprofile, and -exectrace flags capture
// pprof/runtime-trace artifacts of the whole run.
//
// -parallelism sets the Solve worker pool the experiments run under:
// 1 (the default) is the exact sequential engine, 0 means runtime.NumCPU,
// and any other value is the worker bound. Tables and non-par.* counters
// are byte-identical at every level — compare elapsed_ns across artifacts
// to read the scaling.
//
// -store accepts a comma-separated backend list. With more than one store,
// every selected experiment runs once per list entry back to back in this
// one process — timing A/Bs between separate processes are polluted by
// whatever scheduling or frequency state each process happens to get, and
// interleaving per experiment makes that drift hit both sides equally —
// and one artifact is written per distinct backend, with the backend name
// appended to -suffix (e.g. -suffix -store -> BENCH_<date>-store-mem.json
// and BENCH_<date>-store-col.json). A backend listed more than once
// re-runs the experiments and keeps the element-wise minimum of each
// latency metric, so -store mem,col,mem,col is a best-of-two alternating
// A/B: a transient stall (GC cycle, scheduler hiccup) in one round cannot
// masquerade as a backend effect, because the other round's minimum wins.
//
// The command exits non-zero when any experiment's built-in cross-checks
// report an ERROR or a DISAGREEMENT, so a clean run doubles as an
// end-to-end correctness check.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"wdpt/internal/db"
	"wdpt/internal/db/snapshot"
	"wdpt/internal/gen"
	"wdpt/internal/harness"
	"wdpt/internal/obs"
	"wdpt/internal/sparql"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// benchExperiment is one experiment's slice of the BENCH_<date>.json
// artifact: identity, wall-clock cost, work counters, and the table rows.
type benchExperiment struct {
	ID        string                `json:"id"`
	Title     string                `json:"title"`
	Paper     string                `json:"paper"`
	ElapsedNS int64                 `json:"elapsed_ns"`
	Counters  map[string]int64      `json:"counters"`
	Columns   []string              `json:"columns"`
	Rows      [][]string            `json:"rows"`
	Notes     []string              `json:"notes,omitempty"`
	Timings   []harness.TimingPoint `json:"timings,omitempty"`
}

// benchArtifact is the top-level BENCH_<date><suffix>.json document.
type benchArtifact struct {
	Date        string            `json:"date"`
	Commit      string            `json:"commit"`
	GoVersion   string            `json:"go_version"`
	Quick       bool              `json:"quick"`
	Repetitions int               `json:"repetitions"`
	Parallelism int               `json:"parallelism"`
	Store       string            `json:"store,omitempty"`
	Experiments []benchExperiment `json:"experiments"`
}

// commitStamp identifies the benchmarked commit: WDPT_COMMIT when set (CI
// passes the exact SHA it checked out), otherwise git rev-parse HEAD, and
// the empty string when neither is available (tarball builds).
func commitStamp() string {
	if c := strings.TrimSpace(os.Getenv("WDPT_COMMIT")); c != "" {
		return c
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// findExperiment returns the artifact's entry for the given experiment id,
// or nil if this is the first run of that experiment on the backend.
func findExperiment(art *benchArtifact, id string) *benchExperiment {
	for i := range art.Experiments {
		if art.Experiments[i].ID == id {
			return &art.Experiments[i]
		}
	}
	return nil
}

// mergeMin folds a repeated run of the same experiment on the same backend
// into the existing artifact entry: every latency metric takes the
// element-wise minimum across runs and the repetition counts accumulate,
// so the entry reports the best observed time per point. Tables, counters
// and notes are deterministic per backend (the backend-equivalence suite
// pins this), so the first run's copies stand.
func mergeMin(prev *benchExperiment, next benchExperiment) {
	if next.ElapsedNS < prev.ElapsedNS {
		prev.ElapsedNS = next.ElapsedNS
	}
	if len(prev.Timings) != len(next.Timings) {
		return // defensive: an interrupted rerun measured fewer points
	}
	for i := range prev.Timings {
		p, n := &prev.Timings[i], next.Timings[i]
		if n.MinNS < p.MinNS {
			p.MinNS = n.MinNS
		}
		if n.P50NS < p.P50NS {
			p.P50NS = n.P50NS
		}
		if n.P95NS < p.P95NS {
			p.P95NS = n.P95NS
		}
		if n.P99NS < p.P99NS {
			p.P99NS = n.P99NS
		}
		p.Reps += n.Reps
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wdptbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list experiments and exit")
	runIDs := fs.String("run", "", "comma-separated experiment ids (default: all)")
	quick := fs.Bool("quick", false, "use smoke-test sizes")
	short := fs.Bool("short", false, "alias of -quick")
	reps := fs.Int("reps", 0, "repetitions per measured point (default 3)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := fs.Bool("json", false, "write the BENCH_<date><suffix>.json metrics artifact")
	outDir := fs.String("out", ".", "directory for the BENCH_<date><suffix>.json artifact")
	parallelism := fs.Int("parallelism", 1, "Solve worker pool size (1 = sequential, 0 = NumCPU)")
	store := fs.String("store", "col", "storage backend(s) for experiment databases: col (columnar), mem (legacy string-map), or a comma-separated list for an in-process A/B")
	snapDir := fs.String("snapshot", "", "run the snapshot reload-vs-reparse micro-benchmark in this directory and exit")
	suffix := fs.String("suffix", "", "artifact filename suffix, e.g. -p8 -> BENCH_<date>-p8.json")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	traceFile := fs.String("exectrace", "", "write a runtime execution trace to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, e := range harness.All() {
			fmt.Fprintf(stdout, "%-4s %s\n     reproduces: %s\n", e.ID, e.Title, e.Paper)
		}
		return 0
	}
	if *snapDir != "" {
		if err := snapshotBench(*snapDir, *quick || *short, *reps, stdout); err != nil {
			fmt.Fprintf(stderr, "wdptbench: snapshot: %v\n", err)
			return 1
		}
		return 0
	}
	var selected []harness.Experiment
	if *runIDs == "" {
		selected = harness.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := harness.Get(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(stderr, "wdptbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}
	stop, err := obs.Profiles{CPUFile: *cpuProfile, MemFile: *memProfile, TraceFile: *traceFile}.Start()
	if err != nil {
		fmt.Fprintf(stderr, "wdptbench: %v\n", err)
		return 2
	}
	var backends []db.Backend
	for _, name := range strings.Split(*store, ",") {
		b, err := db.ParseBackend(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintf(stderr, "wdptbench: %v\n", err)
			return 2
		}
		backends = append(backends, b)
	}
	par := *parallelism
	if par == 0 {
		par = runtime.NumCPU()
	}
	// The first interrupt cancels the in-flight Solve calls (the context
	// reaches the context-aware experiments through Config.BaseContext) and
	// stops the sweep at the next experiment boundary; once it fires, the
	// handler is unregistered so a second Ctrl-C terminates immediately.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	//lint:ignore R11 watcher is joined by process lifetime: it unregisters the signal handler after the first interrupt and exits; joining it would hold main hostage to the signal it exists to release
	go func() {
		<-ctx.Done()
		stopSignals()
	}()
	cfg := harness.Config{Quick: *quick || *short, Repetitions: *reps, Parallelism: par, BaseContext: ctx}
	// One artifact per distinct backend; repeated list entries min-merge
	// into it. artIdx maps each backend to its artifact.
	var artifacts []benchArtifact
	artIdx := make(map[db.Backend]int)
	for _, b := range backends {
		if _, ok := artIdx[b]; ok {
			continue
		}
		artIdx[b] = len(artifacts)
		artifacts = append(artifacts, benchArtifact{
			Date:        time.Now().Format("2006-01-02"),
			Commit:      commitStamp(),
			GoVersion:   runtime.Version(),
			Quick:       cfg.Quick,
			Repetitions: *reps,
			Parallelism: par,
			Store:       b.String(),
		})
	}
	failed := false
	interrupted := false
	for _, e := range selected {
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		for _, backend := range backends {
			// The experiments build their databases through gen.*, which
			// uses db.New; pointing the process default at the backend makes
			// every experiment run on it. Tables and counters are
			// byte-identical across backends (the backend-equivalence suite
			// pins this) — only the timings move, which is what a
			// mem-vs-col A/B measures.
			db.SetDefaultBackend(backend)
			// A fresh Stats and TimingLog per experiment keep each artifact
			// entry's counters and latency summaries attributable to that
			// experiment alone.
			cfg.Stats = obs.NewStats()
			cfg.Timings = &harness.TimingLog{}
			start := time.Now()
			tbl := e.Run(cfg)
			elapsed := time.Since(start)
			if *csv {
				fmt.Fprintf(stdout, "# %s — %s\n%s\n", tbl.ID, tbl.Title, tbl.CSV())
			} else {
				fmt.Fprintf(stdout, "%s\n(store %s, total experiment time: %v)\n\n",
					tbl.Render(), backend, elapsed.Round(time.Millisecond))
			}
			for _, n := range tbl.Notes {
				if strings.Contains(n, "ERROR") || strings.Contains(n, "DISAGREEMENT") {
					failed = true
				}
			}
			art := &artifacts[artIdx[backend]]
			entry := benchExperiment{
				ID:        tbl.ID,
				Title:     tbl.Title,
				Paper:     tbl.Paper,
				ElapsedNS: elapsed.Nanoseconds(),
				Counters:  cfg.Stats.Snapshot(),
				Columns:   tbl.Columns,
				Rows:      tbl.Rows,
				Notes:     tbl.Notes,
				Timings:   cfg.Timings.Points(),
			}
			if prev := findExperiment(art, tbl.ID); prev != nil {
				mergeMin(prev, entry)
			} else {
				art.Experiments = append(art.Experiments, entry)
			}
		}
	}
	if serr := stop(); serr != nil {
		fmt.Fprintf(stderr, "wdptbench: %v\n", serr)
		return 2
	}
	if interrupted {
		fmt.Fprintln(stderr, "wdptbench: interrupted; sweep stopped without writing artifacts")
		return 1
	}
	if *jsonOut {
		for _, artifact := range artifacts {
			sfx := *suffix
			if len(artifacts) > 1 {
				sfx += "-" + artifact.Store
			}
			path := filepath.Join(*outDir, "BENCH_"+artifact.Date+sfx+".json")
			data, err := json.MarshalIndent(artifact, "", "  ")
			if err != nil {
				fmt.Fprintf(stderr, "wdptbench: %v\n", err)
				return 2
			}
			if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(stderr, "wdptbench: %v\n", err)
				return 2
			}
			fmt.Fprintf(stdout, "wrote %s\n", path)
		}
	}
	if failed {
		fmt.Fprintln(stderr, "wdptbench: at least one experiment reported an ERROR")
		return 1
	}
	return 0
}

// snapMinSpeedup reads the WDPT_SNAP_MIN_SPEEDUP gate (default 1.5). The
// tolerant default leaves headroom for noisy shared CI machines: reload is
// typically several times faster than reparse, so 1.5x only trips on a real
// regression (e.g. the loader re-validating per tuple).
func snapMinSpeedup() float64 {
	if s := strings.TrimSpace(os.Getenv("WDPT_SNAP_MIN_SPEEDUP")); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 1.5
}

// snapshotBench is the -snapshot mode: persist the largest generated
// fixture once, then race text reparsing against snapshot reloading (best
// of reps rounds each, minimum latency — transient stalls in either lane
// cannot masquerade as a result). The reloaded database must render
// identically to the parsed one, and reload must beat reparse by
// WDPT_SNAP_MIN_SPEEDUP.
func snapshotBench(dir string, quick bool, reps int, stdout io.Writer) error {
	nBands, perBand := 2000, 8
	if quick {
		nBands = 200
	}
	if reps < 1 {
		reps = 3
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	text := sparql.FormatDatabase(gen.MusicDatabaseLarge(nBands, perBand, 1))
	parsed, err := sparql.ParseDatabase(text)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "bench.snap")
	writeStart := time.Now()
	if err := snapshot.Write(path, parsed); err != nil {
		return err
	}
	writeElapsed := time.Since(writeStart)
	parseMin := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if _, err := sparql.ParseDatabase(text); err != nil {
			return err
		}
		if e := time.Since(start); e < parseMin {
			parseMin = e
		}
	}
	loadMin := time.Duration(1<<63 - 1)
	var loaded *db.Database
	for i := 0; i < reps; i++ {
		start := time.Now()
		loaded, err = snapshot.Read(path, db.DefaultBackend())
		if err != nil {
			return err
		}
		if e := time.Since(start); e < loadMin {
			loadMin = e
		}
	}
	if loaded.String() != parsed.String() {
		return fmt.Errorf("reloaded snapshot diverges from the parsed database")
	}
	speedup := float64(parseMin) / float64(loadMin)
	fmt.Fprintf(stdout, "snapshot bench: %d bands x %d records (%d bytes text), write %v\n",
		nBands, perBand, len(text), writeElapsed.Round(time.Microsecond))
	fmt.Fprintf(stdout, "  reparse  min of %d: %v\n  reload   min of %d: %v\n  speedup: %.2fx (gate %.2fx)\n",
		reps, parseMin.Round(time.Microsecond), reps, loadMin.Round(time.Microsecond), speedup, snapMinSpeedup())
	if min := snapMinSpeedup(); speedup < min {
		return fmt.Errorf("snapshot reload speedup %.2fx is below the %.2fx gate", speedup, min)
	}
	return nil
}
