// Command wdptbench regenerates the paper's tables and figures as text
// tables: one experiment per artifact (see DESIGN.md §4 and EXPERIMENTS.md).
//
// Usage:
//
//	wdptbench -list
//	wdptbench                 # run everything (about a minute)
//	wdptbench -run E2,E8      # run selected experiments
//	wdptbench -quick          # smoke-test sizes
//
// The command exits non-zero when any experiment's built-in cross-checks
// report an ERROR or a DISAGREEMENT, so a clean run doubles as an
// end-to-end correctness check.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"wdpt/internal/harness"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wdptbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list experiments and exit")
	runIDs := fs.String("run", "", "comma-separated experiment ids (default: all)")
	quick := fs.Bool("quick", false, "use smoke-test sizes")
	reps := fs.Int("reps", 0, "repetitions per measured point (default 3)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, e := range harness.All() {
			fmt.Fprintf(stdout, "%-4s %s\n     reproduces: %s\n", e.ID, e.Title, e.Paper)
		}
		return 0
	}
	var selected []harness.Experiment
	if *runIDs == "" {
		selected = harness.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := harness.Get(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(stderr, "wdptbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}
	cfg := harness.Config{Quick: *quick, Repetitions: *reps}
	failed := false
	for _, e := range selected {
		start := time.Now()
		tbl := e.Run(cfg)
		if *csv {
			fmt.Fprintf(stdout, "# %s — %s\n%s\n", tbl.ID, tbl.Title, tbl.CSV())
		} else {
			fmt.Fprintf(stdout, "%s\n(total experiment time: %v)\n\n",
				tbl.Render(), time.Since(start).Round(time.Millisecond))
		}
		for _, n := range tbl.Notes {
			if strings.Contains(n, "ERROR") || strings.Contains(n, "DISAGREEMENT") {
				failed = true
			}
		}
	}
	if failed {
		fmt.Fprintln(stderr, "wdptbench: at least one experiment reported an ERROR")
		return 1
	}
	return 0
}
