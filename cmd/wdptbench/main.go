// Command wdptbench regenerates the paper's tables and figures as text
// tables: one experiment per artifact (see DESIGN.md §4 and EXPERIMENTS.md).
//
// Usage:
//
//	wdptbench -list
//	wdptbench                 # run everything (about a minute)
//	wdptbench -run E2,E8      # run selected experiments
//	wdptbench -quick          # smoke-test sizes (-short is an alias)
//	wdptbench -json           # also write the BENCH_<date>.json artifact
//	wdptbench -parallelism 0  # Solve worker pool sized to NumCPU
//
// With -json, the run additionally writes a BENCH_<date><suffix>.json
// metrics artifact into -out (default "."): per-experiment wall-clock time,
// the engine work counters of docs/OBSERVABILITY.md, per-measured-point
// latency summaries (min plus p50/p95/p99 over the repetitions), and the
// rendered rows — the machine-readable companion to EXPERIMENTS.md. The
// artifact is stamped with the commit (WDPT_COMMIT, falling back to
// git rev-parse HEAD, empty if unavailable) and the Go version, so
// scripts/benchdiff.sh can label what it compares. The -suffix flag
// distinguishes artifacts of the same day (CI writes one per parallelism
// level). The -cpuprofile, -memprofile, and -exectrace flags capture
// pprof/runtime-trace artifacts of the whole run.
//
// -parallelism sets the Solve worker pool the experiments run under:
// 1 (the default) is the exact sequential engine, 0 means runtime.NumCPU,
// and any other value is the worker bound. Tables and non-par.* counters
// are byte-identical at every level — compare elapsed_ns across artifacts
// to read the scaling.
//
// The command exits non-zero when any experiment's built-in cross-checks
// report an ERROR or a DISAGREEMENT, so a clean run doubles as an
// end-to-end correctness check.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"wdpt/internal/harness"
	"wdpt/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// benchExperiment is one experiment's slice of the BENCH_<date>.json
// artifact: identity, wall-clock cost, work counters, and the table rows.
type benchExperiment struct {
	ID        string                `json:"id"`
	Title     string                `json:"title"`
	Paper     string                `json:"paper"`
	ElapsedNS int64                 `json:"elapsed_ns"`
	Counters  map[string]int64      `json:"counters"`
	Columns   []string              `json:"columns"`
	Rows      [][]string            `json:"rows"`
	Notes     []string              `json:"notes,omitempty"`
	Timings   []harness.TimingPoint `json:"timings,omitempty"`
}

// benchArtifact is the top-level BENCH_<date><suffix>.json document.
type benchArtifact struct {
	Date        string            `json:"date"`
	Commit      string            `json:"commit"`
	GoVersion   string            `json:"go_version"`
	Quick       bool              `json:"quick"`
	Repetitions int               `json:"repetitions"`
	Parallelism int               `json:"parallelism"`
	Experiments []benchExperiment `json:"experiments"`
}

// commitStamp identifies the benchmarked commit: WDPT_COMMIT when set (CI
// passes the exact SHA it checked out), otherwise git rev-parse HEAD, and
// the empty string when neither is available (tarball builds).
func commitStamp() string {
	if c := strings.TrimSpace(os.Getenv("WDPT_COMMIT")); c != "" {
		return c
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wdptbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list experiments and exit")
	runIDs := fs.String("run", "", "comma-separated experiment ids (default: all)")
	quick := fs.Bool("quick", false, "use smoke-test sizes")
	short := fs.Bool("short", false, "alias of -quick")
	reps := fs.Int("reps", 0, "repetitions per measured point (default 3)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := fs.Bool("json", false, "write the BENCH_<date><suffix>.json metrics artifact")
	outDir := fs.String("out", ".", "directory for the BENCH_<date><suffix>.json artifact")
	parallelism := fs.Int("parallelism", 1, "Solve worker pool size (1 = sequential, 0 = NumCPU)")
	suffix := fs.String("suffix", "", "artifact filename suffix, e.g. -p8 -> BENCH_<date>-p8.json")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	traceFile := fs.String("exectrace", "", "write a runtime execution trace to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, e := range harness.All() {
			fmt.Fprintf(stdout, "%-4s %s\n     reproduces: %s\n", e.ID, e.Title, e.Paper)
		}
		return 0
	}
	var selected []harness.Experiment
	if *runIDs == "" {
		selected = harness.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := harness.Get(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(stderr, "wdptbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}
	stop, err := obs.Profiles{CPUFile: *cpuProfile, MemFile: *memProfile, TraceFile: *traceFile}.Start()
	if err != nil {
		fmt.Fprintf(stderr, "wdptbench: %v\n", err)
		return 2
	}
	par := *parallelism
	if par == 0 {
		par = runtime.NumCPU()
	}
	// The first interrupt cancels the in-flight Solve calls (the context
	// reaches the context-aware experiments through Config.BaseContext) and
	// stops the sweep at the next experiment boundary; once it fires, the
	// handler is unregistered so a second Ctrl-C terminates immediately.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	//lint:ignore R11 watcher is joined by process lifetime: it unregisters the signal handler after the first interrupt and exits; joining it would hold main hostage to the signal it exists to release
	go func() {
		<-ctx.Done()
		stopSignals()
	}()
	cfg := harness.Config{Quick: *quick || *short, Repetitions: *reps, Parallelism: par, BaseContext: ctx}
	artifact := benchArtifact{
		Date:        time.Now().Format("2006-01-02"),
		Commit:      commitStamp(),
		GoVersion:   runtime.Version(),
		Quick:       cfg.Quick,
		Repetitions: *reps,
		Parallelism: par,
	}
	failed := false
	interrupted := false
	for _, e := range selected {
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		// A fresh Stats and TimingLog per experiment keep each artifact
		// entry's counters and latency summaries attributable to that
		// experiment alone.
		cfg.Stats = obs.NewStats()
		cfg.Timings = &harness.TimingLog{}
		start := time.Now()
		tbl := e.Run(cfg)
		elapsed := time.Since(start)
		if *csv {
			fmt.Fprintf(stdout, "# %s — %s\n%s\n", tbl.ID, tbl.Title, tbl.CSV())
		} else {
			fmt.Fprintf(stdout, "%s\n(total experiment time: %v)\n\n",
				tbl.Render(), elapsed.Round(time.Millisecond))
		}
		for _, n := range tbl.Notes {
			if strings.Contains(n, "ERROR") || strings.Contains(n, "DISAGREEMENT") {
				failed = true
			}
		}
		artifact.Experiments = append(artifact.Experiments, benchExperiment{
			ID:        tbl.ID,
			Title:     tbl.Title,
			Paper:     tbl.Paper,
			ElapsedNS: elapsed.Nanoseconds(),
			Counters:  cfg.Stats.Snapshot(),
			Columns:   tbl.Columns,
			Rows:      tbl.Rows,
			Notes:     tbl.Notes,
			Timings:   cfg.Timings.Points(),
		})
	}
	if serr := stop(); serr != nil {
		fmt.Fprintf(stderr, "wdptbench: %v\n", serr)
		return 2
	}
	if interrupted {
		fmt.Fprintln(stderr, "wdptbench: interrupted; sweep stopped without writing artifacts")
		return 1
	}
	if *jsonOut {
		path := filepath.Join(*outDir, "BENCH_"+artifact.Date+*suffix+".json")
		data, err := json.MarshalIndent(artifact, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "wdptbench: %v\n", err)
			return 2
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "wdptbench: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %s\n", path)
	}
	if failed {
		fmt.Fprintln(stderr, "wdptbench: at least one experiment reported an ERROR")
		return 1
	}
	return 0
}
