package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, id := range []string{"E1", "E5", "E11"} {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("listing missing %s:\n%s", id, out.String())
		}
	}
}

func TestRunSelectedQuick(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-quick", "-reps", "1", "-run", "E8,E11"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "E8 —") || !strings.Contains(out.String(), "E11 —") {
		t.Fatalf("output:\n%s", out.String())
	}
	if strings.Contains(out.String(), "E1 —") {
		t.Fatal("unselected experiment ran")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-run", "E99"}, &out, &errOut); code == 0 {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errOut); code == 0 {
		t.Fatal("bad flag accepted")
	}
}

func TestCSVOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-quick", "-reps", "1", "-csv", "-run", "E8"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "# E8") || !strings.Contains(out.String(), "n,|p1|,|p2|") {
		t.Fatalf("csv output:\n%s", out.String())
	}
}
