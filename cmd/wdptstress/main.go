// Command wdptstress is an open-loop load generator for a running wdptd (or
// a wdptd cluster coordinator — the harness only speaks the public HTTP
// API, so both look the same to it).
//
// Usage:
//
//	wdptstress -endpoint http://127.0.0.1:8080
//	wdptstress -endpoint ... -qps 50,200,400 -duration 10s
//	wdptstress -endpoint ... -mix scan=1,join=1,union=2 -seed 7
//	wdptstress -endpoint ... -max-tuples 5000 -wall-ms 200
//
// The run is split into phases, one per entry of the comma-separated -qps
// ramp profile, each -duration long. Within a phase the generator is
// open-loop: it fires requests on a fixed schedule derived from the target
// rate and never slows down because the server is slow — latencies under
// overload measure queueing, which is the point of a stress harness. When
// more than -max-inflight requests are outstanding, newly scheduled
// requests are dropped and counted under the "saturated" error class
// instead of silently closing the loop.
//
// The query mix is drawn per scheduled request from a seeded source, so the
// exact sequence of (dataset, query-kind) pairs is a pure function of -seed
// and replays across runs and against different servers. Queries are
// constructed from the server's own /v1/datasets listing: for every dataset
// the harness picks the relation with the most rows (per the per-relation
// row counts the endpoint reports), probes its arity, and derives three
// query kinds from it — "scan" (single atom), "join" (two chained atoms),
// and "union" (a two-member union, which a cluster coordinator evaluates
// scatter-gather). -mix weights these kinds.
//
// Results are written as STRESS_<date><suffix>.json into -out. The
// artifact uses the BENCH_*.json shape that cmd/benchdiff reads —
// experiments keyed by phase id, each carrying timing points with
// min/p50/p95/p99 — so two stress runs diff with the same tool and the
// same tolerance gates as the micro-benchmarks:
//
//	benchdiff STRESS_old.json STRESS_new.json
//
// Timing point 0 aggregates the whole phase; the following points are the
// per-kind latencies in sorted kind order (positions are stable because
// the mix is fixed for a run). Each experiment additionally records the
// target and achieved rate plus an error taxonomy keyed by the typed error
// codes of the API (deadline, tuple_budget, queue_full, ...), "transport"
// for connection failures, and "saturated" for open-loop drops; benchdiff
// ignores the extra fields.
//
// Exit codes: 0 run completed, 1 setup or transport-level failure before
// the run started, 2 usage error. Server-side errors during the run are
// data (the taxonomy), not process failures.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"wdpt/internal/obs"
	"wdpt/internal/server"
	"wdpt/internal/server/client"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// stressPoint is one latency summary in the benchdiff timing-point shape,
// labeled with the query kind it aggregates ("all" for the whole phase).
type stressPoint struct {
	Kind  string `json:"kind"`
	MinNS int64  `json:"min_ns"`
	P50NS int64  `json:"p50_ns"`
	P95NS int64  `json:"p95_ns"`
	P99NS int64  `json:"p99_ns"`
	Reps  int    `json:"reps"`
}

// stressExperiment is one phase of the ramp in the benchdiff experiment
// shape plus the stress-specific rate and error-taxonomy fields.
type stressExperiment struct {
	ID          string         `json:"id"`
	TargetQPS   float64        `json:"target_qps"`
	AchievedQPS float64        `json:"achieved_qps"`
	Sent        int            `json:"sent"`
	OK          int            `json:"ok"`
	Truncated   int            `json:"truncated,omitempty"`
	Errors      map[string]int `json:"errors,omitempty"`
	ElapsedNS   int64          `json:"elapsed_ns"`
	Timings     []stressPoint  `json:"timings"`
}

// stressArtifact is the top-level STRESS_<date><suffix>.json document,
// benchdiff-decodable (date/commit/go_version/quick/parallelism/experiments
// match the BENCH shape).
type stressArtifact struct {
	Date        string             `json:"date"`
	Commit      string             `json:"commit"`
	GoVersion   string             `json:"go_version"`
	Quick       bool               `json:"quick"`
	Parallelism int                `json:"parallelism"`
	Endpoint    string             `json:"endpoint"`
	Seed        int64              `json:"seed"`
	Experiments []stressExperiment `json:"experiments"`
}

// mixEntry is one weighted query kind of the -mix profile.
type mixEntry struct {
	kind   string
	weight int64
}

// target is one dataset's prepared query set: the same three texts are
// reused for every draw, so the schedule stays a pure function of the seed.
type target struct {
	dataset  string
	relation string
	arity    int
	queries  map[string]string
}

// commitStamp identifies the stressed commit: WDPT_COMMIT when set (CI
// passes the exact SHA it checked out), otherwise git rev-parse HEAD, and
// the empty string when neither is available.
func commitStamp() string {
	if c := strings.TrimSpace(os.Getenv("WDPT_COMMIT")); c != "" {
		return c
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wdptstress", flag.ContinueOnError)
	fs.SetOutput(stderr)
	endpoint := fs.String("endpoint", "", "wdptd base URL (required), e.g. http://127.0.0.1:8080")
	qpsList := fs.String("qps", "100", "comma-separated per-phase target rates (the ramp profile)")
	duration := fs.Duration("duration", 3*time.Second, "duration of each phase")
	mixSpec := fs.String("mix", "scan=1,join=1,union=2", "weighted query mix over kinds scan, join, union")
	seed := fs.Int64("seed", 1, "seed for the query-draw schedule")
	parallelism := fs.Int("parallelism", 1, "per-request Solve worker-pool bound (1 sequential, 0 NumCPU)")
	wallMS := fs.Int64("wall-ms", 0, "per-request wall budget in milliseconds (0 = none)")
	maxTuples := fs.Int64("max-tuples", 0, "per-request tuple budget (0 = none)")
	maxAnswers := fs.Int64("max-answers", 0, "per-request answer cap (0 = none)")
	maxInflight := fs.Int("max-inflight", 256, "outstanding-request bound; drops beyond it count as \"saturated\"")
	outDir := fs.String("out", ".", "directory for the STRESS_<date><suffix>.json artifact")
	suffix := fs.String("suffix", "", "artifact filename suffix, e.g. -p8 -> STRESS_<date>-p8.json")
	quick := fs.Bool("quick", false, "smoke mode: cap each phase at 500ms")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *endpoint == "" {
		fmt.Fprintln(stderr, "wdptstress: -endpoint is required")
		return 2
	}
	phases, err := parseQPS(*qpsList)
	if err != nil {
		fmt.Fprintf(stderr, "wdptstress: %v\n", err)
		return 2
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		fmt.Fprintf(stderr, "wdptstress: %v\n", err)
		return 2
	}
	if *maxInflight < 1 {
		fmt.Fprintln(stderr, "wdptstress: -max-inflight must be >= 1")
		return 2
	}
	phaseDur := *duration
	if *quick && phaseDur > 500*time.Millisecond {
		phaseDur = 500 * time.Millisecond
	}
	if phaseDur <= 0 {
		fmt.Fprintln(stderr, "wdptstress: -duration must be positive")
		return 2
	}

	ctx := context.Background()
	cl := client.New(*endpoint, nil)
	targets, err := buildTargets(ctx, cl, *parallelism)
	if err != nil {
		fmt.Fprintf(stderr, "wdptstress: %v\n", err)
		return 1
	}
	var budget *server.BudgetSpec
	if *wallMS > 0 || *maxTuples > 0 || *maxAnswers > 0 {
		budget = &server.BudgetSpec{WallMS: *wallMS, MaxTuples: *maxTuples, MaxAnswers: *maxAnswers}
	}

	art := stressArtifact{
		Date:        time.Now().Format("2006-01-02"),
		Commit:      commitStamp(),
		GoVersion:   runtime.Version(),
		Quick:       *quick,
		Parallelism: *parallelism,
		Endpoint:    *endpoint,
		Seed:        *seed,
	}
	// One rng for the whole ramp: the draw sequence across phases is a
	// single seeded stream, so adding a phase never reshuffles earlier ones.
	rng := rand.New(rand.NewSource(*seed))
	for i, qps := range phases {
		id := fmt.Sprintf("S%d-qps%s", i+1, strconv.FormatFloat(qps, 'g', -1, 64))
		exp := runPhase(ctx, cl, phaseCfg{
			id:          id,
			qps:         qps,
			duration:    phaseDur,
			mix:         mix,
			targets:     targets,
			parallelism: *parallelism,
			budget:      budget,
			maxInflight: *maxInflight,
		}, rng)
		art.Experiments = append(art.Experiments, exp)
		fmt.Fprintf(stdout, "%s: target %g qps, achieved %.1f qps, sent %d, ok %d, truncated %d, errors %d, p50 %v p95 %v p99 %v\n",
			exp.ID, exp.TargetQPS, exp.AchievedQPS, exp.Sent, exp.OK, exp.Truncated, errCount(exp.Errors),
			time.Duration(exp.Timings[0].P50NS).Round(time.Microsecond),
			time.Duration(exp.Timings[0].P95NS).Round(time.Microsecond),
			time.Duration(exp.Timings[0].P99NS).Round(time.Microsecond))
	}

	path := filepath.Join(*outDir, "STRESS_"+art.Date+*suffix+".json")
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "wdptstress: %v\n", err)
		return 1
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(stderr, "wdptstress: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	return 0
}

// parseQPS parses the comma-separated ramp profile.
func parseQPS(s string) ([]float64, error) {
	var phases []float64
	for _, part := range strings.Split(s, ",") {
		q, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || q <= 0 {
			return nil, fmt.Errorf("bad -qps entry %q (want a positive rate)", part)
		}
		phases = append(phases, q)
	}
	return phases, nil
}

// parseMix parses "scan=1,join=1,union=2" into a weighted kind list, sorted
// by kind so the artifact's timing-point order is stable.
func parseMix(s string) ([]mixEntry, error) {
	known := map[string]bool{"scan": true, "join": true, "union": true}
	var mix []mixEntry
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		kind, weight, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -mix entry %q (want kind=weight)", part)
		}
		kind = strings.TrimSpace(kind)
		if !known[kind] {
			return nil, fmt.Errorf("unknown -mix kind %q (want scan, join, or union)", kind)
		}
		if seen[kind] {
			return nil, fmt.Errorf("duplicate -mix kind %q", kind)
		}
		seen[kind] = true
		w, err := strconv.ParseInt(strings.TrimSpace(weight), 10, 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad -mix weight %q (want a non-negative integer)", weight)
		}
		if w > 0 {
			mix = append(mix, mixEntry{kind: kind, weight: w})
		}
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("-mix selects no kinds")
	}
	sort.Slice(mix, func(i, j int) bool { return mix[i].kind < mix[j].kind })
	return mix, nil
}

// drawKind picks a mix kind by weight from the seeded source.
func drawKind(mix []mixEntry, rng *rand.Rand) string {
	var total int64
	for _, m := range mix {
		total += m.weight
	}
	n := rng.Int63n(total)
	for _, m := range mix {
		if n < m.weight {
			return m.kind
		}
		n -= m.weight
	}
	return mix[len(mix)-1].kind
}

// buildTargets derives the query set from the server's /v1/datasets
// listing: per dataset, the relation with the most rows (name-ordered
// tiebreak), its arity probed with a one-answer query, and the three query
// kinds built over it. Datasets with no probeable relation are skipped.
func buildTargets(ctx context.Context, cl *client.Client, parallelism int) ([]target, error) {
	list, err := cl.Datasets(ctx)
	if err != nil {
		return nil, fmt.Errorf("listing datasets: %w", err)
	}
	var targets []target
	for _, d := range list.Datasets {
		// Candidate relations by row count descending, name ascending — the
		// biggest relation makes the most interesting load, and the order is
		// deterministic so every run probes the same way.
		type relRows struct {
			name string
			rows int
		}
		var rels []relRows
		for name, rows := range d.Rows {
			if rows > 0 {
				rels = append(rels, relRows{name, rows})
			}
		}
		sort.Slice(rels, func(i, j int) bool {
			if rels[i].rows != rels[j].rows {
				return rels[i].rows > rels[j].rows
			}
			return rels[i].name < rels[j].name
		})
		for _, r := range rels {
			arity, err := probeArity(ctx, cl, d.Name, r.name, parallelism)
			if err != nil {
				return nil, err
			}
			if arity == 0 {
				continue
			}
			targets = append(targets, target{
				dataset:  d.Name,
				relation: r.name,
				arity:    arity,
				queries:  buildQueries(r.name, arity),
			})
			break
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("no usable dataset: every relation failed the arity probe")
	}
	return targets, nil
}

// probeArity finds the relation's arity by issuing one-answer scans of
// increasing width: the dataset listing guarantees the relation has rows,
// so the correct arity is the one that yields an answer. Probes at the
// wrong arity fail or come back empty; both are skipped. Only transport
// errors abort.
func probeArity(ctx context.Context, cl *client.Client, dataset, relation string, parallelism int) (int, error) {
	for arity := 1; arity <= 6; arity++ {
		req := server.Request{
			Dataset:     dataset,
			Query:       "SELECT ?y0 WHERE " + atom(relation, 0, arity),
			Mode:        "enumerate",
			Parallelism: parallelism,
			Budget:      &server.BudgetSpec{MaxAnswers: 1},
		}
		qr, err := cl.Query(ctx, req)
		if err != nil {
			return 0, fmt.Errorf("probing %s.%s: %w", dataset, relation, err)
		}
		if qr.Report != nil && qr.Report.AnswerCount != nil && *qr.Report.AnswerCount > 0 {
			return arity, nil
		}
	}
	return 0, nil
}

// atom renders relation(?y<from>, ..., ?y<from+arity-1>).
func atom(relation string, from, arity int) string {
	vars := make([]string, arity)
	for i := range vars {
		vars[i] = fmt.Sprintf("?y%d", from+i)
	}
	return relation + "(" + strings.Join(vars, ", ") + ")"
}

// buildQueries derives the three query kinds over one relation: a single-
// atom scan, a two-atom chain join (the last variable of the first atom is
// the first of the second), and a two-member union projecting opposite
// ends of the atom — the union is what a cluster coordinator scatters.
func buildQueries(relation string, arity int) map[string]string {
	first := atom(relation, 0, arity)
	second := atom(relation, arity-1, arity)
	return map[string]string{
		"scan":  "SELECT ?y0 WHERE " + first,
		"join":  "SELECT ?y0 WHERE (" + first + " AND " + second + ")",
		"union": "SELECT ?y0 WHERE " + first + fmt.Sprintf(" UNION SELECT ?y%d WHERE ", arity-1) + first,
	}
}

// phaseCfg carries one phase's parameters.
type phaseCfg struct {
	id          string
	qps         float64
	duration    time.Duration
	mix         []mixEntry
	targets     []target
	parallelism int
	budget      *server.BudgetSpec
	maxInflight int
}

// recorder accumulates one phase's outcomes under a lock. Latencies are
// recorded for answered requests (200 and 206); errors only count.
type recorder struct {
	mu        sync.Mutex
	all       []time.Duration
	byKind    map[string][]time.Duration
	ok        int
	truncated int
	errs      map[string]int
}

func newRecorder() *recorder {
	return &recorder{byKind: make(map[string][]time.Duration), errs: make(map[string]int)}
}

func (rec *recorder) answer(kind string, lat time.Duration, truncated bool) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.all = append(rec.all, lat)
	rec.byKind[kind] = append(rec.byKind[kind], lat)
	if truncated {
		rec.truncated++
	} else {
		rec.ok++
	}
}

func (rec *recorder) failure(class string) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.errs[class]++
}

// runPhase drives one open-loop phase and summarizes it into an experiment.
func runPhase(ctx context.Context, cl *client.Client, cfg phaseCfg, rng *rand.Rand) stressExperiment {
	interval := time.Duration(float64(time.Second) / cfg.qps)
	rec := newRecorder()
	sem := make(chan struct{}, cfg.maxInflight)
	var wg sync.WaitGroup
	start := time.Now()
	sent := 0
	for i := 0; ; i++ {
		at := start.Add(time.Duration(i) * interval)
		if at.Sub(start) >= cfg.duration {
			break
		}
		// The draw precedes the admission check so the (dataset, kind)
		// sequence is a pure function of the seed even under saturation.
		tgt := cfg.targets[rng.Intn(len(cfg.targets))]
		kind := drawKind(cfg.mix, rng)
		if d := time.Until(at); d > 0 {
			time.Sleep(d)
		}
		sent++
		req := server.Request{
			Dataset:     tgt.dataset,
			Query:       tgt.queries[kind],
			Mode:        "enumerate",
			Parallelism: cfg.parallelism,
			Budget:      cfg.budget,
		}
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				fire(ctx, cl, req, kind, rec)
			}()
		default:
			// Open loop: the schedule never waits for capacity; the drop is
			// the signal that the target rate exceeded what -max-inflight
			// connections can carry.
			rec.failure("saturated")
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	return summarize(cfg, rec, sent, elapsed)
}

// fire executes one request and records its outcome.
func fire(ctx context.Context, cl *client.Client, req server.Request, kind string, rec *recorder) {
	start := time.Now()
	qr, err := cl.Query(ctx, req)
	lat := time.Since(start)
	switch {
	case err != nil:
		rec.failure("transport")
	case qr.Status == 200:
		rec.answer(kind, lat, false)
	case qr.Status == 206:
		rec.answer(kind, lat, true)
	case qr.Err != nil && qr.Err.Code != "":
		rec.failure(qr.Err.Code)
	default:
		rec.failure("http_" + strconv.Itoa(qr.Status))
	}
}

// summarize folds a phase's recorder into the artifact experiment: point 0
// aggregates all answered requests, then one point per mix kind in sorted
// order (zero-filled when a kind saw no answers, keeping point positions
// stable for benchdiff).
func summarize(cfg phaseCfg, rec *recorder, sent int, elapsed time.Duration) stressExperiment {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	exp := stressExperiment{
		ID:        cfg.id,
		TargetQPS: cfg.qps,
		Sent:      sent,
		OK:        rec.ok,
		Truncated: rec.truncated,
		ElapsedNS: elapsed.Nanoseconds(),
	}
	if elapsed > 0 {
		exp.AchievedQPS = float64(rec.ok+rec.truncated) / elapsed.Seconds()
	}
	if len(rec.errs) > 0 {
		exp.Errors = make(map[string]int, len(rec.errs))
		for class, n := range rec.errs {
			exp.Errors[class] = n
		}
	}
	exp.Timings = append(exp.Timings, point("all", rec.all))
	for _, m := range cfg.mix {
		exp.Timings = append(exp.Timings, point(m.kind, rec.byKind[m.kind]))
	}
	return exp
}

// point summarizes one latency series with exact nearest-rank percentiles.
func point(kind string, lats []time.Duration) stressPoint {
	if len(lats) == 0 {
		return stressPoint{Kind: kind}
	}
	sorted := make([]time.Duration, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return stressPoint{
		Kind:  kind,
		MinNS: sorted[0].Nanoseconds(),
		P50NS: obs.QuantileSorted(sorted, 0.50).Nanoseconds(),
		P95NS: obs.QuantileSorted(sorted, 0.95).Nanoseconds(),
		P99NS: obs.QuantileSorted(sorted, 0.99).Nanoseconds(),
		Reps:  len(sorted),
	}
}

// errCount totals an error taxonomy.
func errCount(errs map[string]int) int {
	n := 0
	for _, v := range errs {
		n += v
	}
	return n
}
