package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wdpt/internal/db"
	"wdpt/internal/gen"
	"wdpt/internal/server"
	"wdpt/internal/sparql"
)

// startStressServer runs a wdptd over a generated chain dataset and returns
// its base URL.
func startStressServer(t *testing.T, d *db.Database) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.txt")
	if err := os.WriteFile(path, []byte(sparql.FormatDatabase(d)), 0o644); err != nil {
		t.Fatal(err)
	}
	reg, err := server.NewRegistry(map[string]string{"chain": path})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewServer(server.Config{Registry: reg, MaxInFlight: 16})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return hs.URL
}

func TestParseQPS(t *testing.T) {
	phases, err := parseQPS(" 50, 200,400 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 3 || phases[0] != 50 || phases[2] != 400 {
		t.Errorf("parseQPS = %v, want [50 200 400]", phases)
	}
	for _, bad := range []string{"", "0", "-5", "fast"} {
		if _, err := parseQPS(bad); err == nil {
			t.Errorf("parseQPS(%q) did not fail", bad)
		}
	}
}

func TestParseMix(t *testing.T) {
	mix, err := parseMix("union=2,scan=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix[0].kind != "scan" || mix[1].kind != "union" {
		t.Errorf("parseMix not sorted by kind: %+v", mix)
	}
	for _, bad := range []string{"", "scan", "scan=x", "warp=1", "scan=1,scan=2", "scan=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) did not fail", bad)
		}
	}
}

// TestDrawScheduleIsSeedDeterministic pins the load schedule as a pure
// function of the seed: same seed, same (kind) sequence; different seed,
// (almost surely) a different one.
func TestDrawScheduleIsSeedDeterministic(t *testing.T) {
	mix, err := parseMix("scan=1,join=1,union=2")
	if err != nil {
		t.Fatal(err)
	}
	draw := func(seed int64) string {
		rng := rand.New(rand.NewSource(seed))
		var b strings.Builder
		for i := 0; i < 256; i++ {
			b.WriteString(drawKind(mix, rng))
			b.WriteByte(' ')
		}
		return b.String()
	}
	if draw(7) != draw(7) {
		t.Error("same seed produced different draw sequences")
	}
	if draw(7) == draw(8) {
		t.Error("different seeds produced the same 256-draw sequence")
	}
}

func TestBuildQueriesShapes(t *testing.T) {
	q := buildQueries("E", 2)
	want := map[string]string{
		"scan":  "SELECT ?y0 WHERE E(?y0, ?y1)",
		"join":  "SELECT ?y0 WHERE (E(?y0, ?y1) AND E(?y1, ?y2))",
		"union": "SELECT ?y0 WHERE E(?y0, ?y1) UNION SELECT ?y1 WHERE E(?y0, ?y1)",
	}
	for kind, text := range want {
		if q[kind] != text {
			t.Errorf("%s query = %q, want %q", kind, q[kind], text)
		}
		if kind == "union" {
			if _, err := sparql.ParseUnionQuery(text); err != nil {
				t.Errorf("union query does not parse: %v", err)
			}
		} else if _, err := sparql.ParseQuery(text); err != nil {
			t.Errorf("%s query does not parse: %v", kind, err)
		}
	}
	// Arity 1 degenerates to self-joins and a union of identical trees,
	// which must still parse.
	for kind, text := range buildQueries("R", 1) {
		var err error
		if kind == "union" {
			_, err = sparql.ParseUnionQuery(text)
		} else {
			_, err = sparql.ParseQuery(text)
		}
		if err != nil {
			t.Errorf("arity-1 %s query %q does not parse: %v", kind, text, err)
		}
	}
}

// benchdiffArtifact mirrors exactly what cmd/benchdiff decodes, pinning
// that a STRESS artifact stays consumable by it.
type benchdiffArtifact struct {
	Date        string `json:"date"`
	Commit      string `json:"commit"`
	GoVersion   string `json:"go_version"`
	Quick       bool   `json:"quick"`
	Parallelism int    `json:"parallelism"`
	Experiments []struct {
		ID        string `json:"id"`
		ElapsedNS int64  `json:"elapsed_ns"`
		Timings   []struct {
			MinNS int64 `json:"min_ns"`
			P50NS int64 `json:"p50_ns"`
			P95NS int64 `json:"p95_ns"`
			P99NS int64 `json:"p99_ns"`
			Reps  int   `json:"reps"`
		} `json:"timings"`
	} `json:"experiments"`
}

// TestStressRunWritesBenchdiffArtifact drives a short two-phase ramp
// against a live server and checks the artifact end to end: phase ids,
// stable timing-point layout, monotone percentiles, and benchdiff
// decodability.
func TestStressRunWritesBenchdiffArtifact(t *testing.T) {
	url := startStressServer(t, gen.ChainDatabase(4))
	out := t.TempDir()
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-endpoint", url, "-qps", "200,400", "-duration", "200ms",
		"-seed", "7", "-out", out, "-suffix", "-test",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	path := filepath.Join(out, "STRESS_"+time.Now().Format("2006-01-02")+"-test.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}

	var art stressArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	if art.Seed != 7 || art.Endpoint != url || art.GoVersion == "" {
		t.Errorf("artifact header = %+v", art)
	}
	if len(art.Experiments) != 2 {
		t.Fatalf("got %d experiments, want 2 (one per ramp phase)", len(art.Experiments))
	}
	for i, want := range []string{"S1-qps200", "S2-qps400"} {
		if art.Experiments[i].ID != want {
			t.Errorf("experiment %d id = %q, want %q", i, art.Experiments[i].ID, want)
		}
	}
	for _, e := range art.Experiments {
		if e.OK+e.Truncated == 0 {
			t.Fatalf("%s answered no requests: %+v", e.ID, e)
		}
		// Point 0 aggregates the phase; then one point per mix kind sorted
		// (default mix: join, scan, union).
		if len(e.Timings) != 4 {
			t.Fatalf("%s has %d timing points, want 4", e.ID, len(e.Timings))
		}
		for i, kind := range []string{"all", "join", "scan", "union"} {
			if e.Timings[i].Kind != kind {
				t.Errorf("%s point %d kind = %q, want %q", e.ID, i, e.Timings[i].Kind, kind)
			}
		}
		p := e.Timings[0]
		if p.Reps == 0 || p.MinNS <= 0 {
			t.Errorf("%s aggregate point empty: %+v", e.ID, p)
		}
		if p.MinNS > p.P50NS || p.P50NS > p.P95NS || p.P95NS > p.P99NS {
			t.Errorf("%s percentiles not monotone: %+v", e.ID, p)
		}
		if e.AchievedQPS <= 0 {
			t.Errorf("%s achieved qps = %v", e.ID, e.AchievedQPS)
		}
	}

	var bd benchdiffArtifact
	if err := json.Unmarshal(data, &bd); err != nil {
		t.Fatalf("artifact not benchdiff-decodable: %v", err)
	}
	if len(bd.Experiments) != 2 || len(bd.Experiments[0].Timings) != 4 ||
		bd.Experiments[0].Timings[0].P95NS == 0 {
		t.Errorf("benchdiff view lost data: %+v", bd)
	}
}

// TestStressErrorTaxonomy pins that server-side budget trips land in the
// error taxonomy under their typed code rather than failing the run.
func TestStressErrorTaxonomy(t *testing.T) {
	url := startStressServer(t, gen.ChainDatabase(4))
	out := t.TempDir()
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-endpoint", url, "-qps", "200", "-duration", "150ms",
		"-seed", "1", "-max-tuples", "1", "-out", out, "-suffix", "-err",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d\nstderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(filepath.Join(out, "STRESS_"+time.Now().Format("2006-01-02")+"-err.json"))
	if err != nil {
		t.Fatal(err)
	}
	var art stressArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	if len(art.Experiments) != 1 {
		t.Fatalf("got %d experiments, want 1", len(art.Experiments))
	}
	e := art.Experiments[0]
	if e.Errors["tuple_budget"] == 0 {
		t.Errorf("tuple-budget trips missing from taxonomy: %+v", e.Errors)
	}
}

// TestQuickCapsPhaseDuration keeps the smoke path fast: -quick must bound
// each phase regardless of -duration.
func TestQuickCapsPhaseDuration(t *testing.T) {
	url := startStressServer(t, gen.ChainDatabase(4))
	out := t.TempDir()
	var stdout, stderr bytes.Buffer
	start := time.Now()
	code := run([]string{
		"-endpoint", url, "-qps", "100", "-duration", "1h", "-quick",
		"-out", out, "-suffix", "-quick",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d\nstderr: %s", code, stderr.String())
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("-quick run took %v", elapsed)
	}
	var art stressArtifact
	data, err := os.ReadFile(filepath.Join(out, "STRESS_"+time.Now().Format("2006-01-02")+"-quick.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	if !art.Quick {
		t.Error("artifact not stamped quick")
	}
}
