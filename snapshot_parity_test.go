package wdpt_test

import (
	"fmt"
	"testing"

	"wdpt"
	"wdpt/internal/db"
	"wdpt/internal/db/snapshot"
	"wdpt/internal/sparql"
)

// Snapshot-parity suite: the acceptance contract of the persistence format
// (docs/STORAGE.md). A database that travels text -> Seal -> snapshot ->
// load must answer every query byte-identically to the directly parsed
// database, with identical evaluation counters, on both storage backends
// and across the parallelism sweep — durability may only change where the
// rows come from, never which rows or how much evaluation work is recorded.

func TestSnapshotParity(t *testing.T) {
	for _, c := range equivCases() {
		// Round-trip through the text format first, so the snapshot source
		// is the same sealed database every operator data path produces.
		parsed, err := sparql.ParseDatabase(sparql.FormatDatabase(c.d))
		if err != nil {
			t.Fatalf("%s: reparsing fixture: %v", c.name, err)
		}
		blob, err := snapshot.Encode(parsed)
		if err != nil {
			t.Fatalf("%s: encoding snapshot: %v", c.name, err)
		}
		for _, b := range []db.Backend{db.BackendColumnar, db.BackendMemory} {
			loaded, err := snapshot.Decode(blob, b)
			if err != nil {
				t.Fatalf("%s on %s: decoding snapshot: %v", c.name, b, err)
			}
			for _, par := range []int{1, 8} {
				t.Run(fmt.Sprintf("%s/%s/p%d", c.name, b, par), func(t *testing.T) {
					mkOpts := func() wdpt.SolveOptions {
						return wdpt.SolveOptions{
							Mode:        wdpt.ModeEnumerate,
							Engine:      wdpt.AutoEngine(),
							Parallelism: par,
						}
					}
					wantAns, wantCtrs, wantErr := solveOnBackend(t, c.p, parsed, b, mkOpts())
					gotAns, gotCtrs, gotErr := solveOnBackend(t, c.p, loaded, b, mkOpts())
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("error disagreement: parsed=%v snapshot=%v", wantErr, gotErr)
					}
					if wantAns != gotAns {
						t.Errorf("answers differ between parsed and snapshot-loaded data:\n--- parsed\n%s--- snapshot\n%s", wantAns, gotAns)
					}
					snapshotDiff(t, gotCtrs, wantCtrs)
				})
			}
		}
	}
}
