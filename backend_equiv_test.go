package wdpt_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"wdpt"
	"wdpt/internal/db"
	"wdpt/internal/gen"
)

// Backend-equivalence suite: the columnar store (the default) and the
// legacy string-map store are interchangeable behind the db.Store
// interface. For any database, query, engine, parallelism, and budget, the
// two backends must produce byte-identical answer lists and identical
// evaluation counters — the storage layer may only change *how fast* rows
// come back, never *which* rows or *how much* evaluation work is recorded.
// Runs under -race in CI (the chaos matrix legs exercise P ∈ {1, 8}).

// dropDBCounters removes the db.* storage counters before comparing
// snapshots. They are pinned equal today, but the equivalence contract
// (docs/STORAGE.md) only promises evaluation-layer counters, leaving the
// storage layer free to count backend-specific work later.
func dropDBCounters(snap map[string]int64) map[string]int64 {
	for name := range snap {
		if strings.HasPrefix(name, "db.") {
			delete(snap, name)
		}
	}
	return snap
}

// solveOnBackend evaluates p over a copy of d held on the given backend and
// returns the rendered answers, the non-db.* counters, and the error. The
// engine in opts must be freshly constructed per call: its plan cache is
// per-instance state, and a shared engine would hand the second backend a
// warm cache the first one had to fill.
func solveOnBackend(t *testing.T, p *wdpt.PatternTree, d *db.Database, b db.Backend, opts wdpt.SolveOptions) (string, map[string]int64, error) {
	t.Helper()
	st := wdpt.NewStats()
	opts.Stats = st
	res, err := p.Solve(context.Background(), d.CloneWithBackend(b), opts)
	return renderSolutions(res.Answers), dropDBCounters(dropParCounters(st.Snapshot())), err
}

// equivCases is the shared fixture pool: the Figure 1 fixture plus seeded
// random tree/database pairs with constants in atoms (exercising the
// dictionary-miss path: some query constants are absent from the data).
func equivCases() []struct {
	name string
	p    *wdpt.PatternTree
	d    *db.Database
} {
	tp := gen.TreeParams{MaxDepth: 2, MaxChildren: 2, AtomsPerNode: 2, ConstProb: 0.3}
	var cases []struct {
		name string
		p    *wdpt.PatternTree
		d    *db.Database
	}
	cases = append(cases, struct {
		name string
		p    *wdpt.PatternTree
		d    *db.Database
	}{"figure1", gen.MusicWDPT("x", "y", "z", "zp"), gen.MusicDatabase()})
	for seed := int64(1); seed <= 4; seed++ {
		cases = append(cases, struct {
			name string
			p    *wdpt.PatternTree
			d    *db.Database
		}{
			fmt.Sprintf("random%d", seed),
			gen.RandomWDPT(tp, seed),
			gen.RandomDatabase(gen.DBParams{DomainSize: 5, TuplesPerRel: 25}, seed),
		})
	}
	return cases
}

// TestBackendEquivalenceSolve pins byte-identical answers and identical
// evaluation counters across backends, engines, and the parallelism sweep.
func TestBackendEquivalenceSolve(t *testing.T) {
	engines := []struct {
		name string
		mk   func() wdpt.Engine
	}{
		{"naive", wdpt.NaiveEngine},
		{"yannakakis", wdpt.YannakakisEngine},
		{"auto", wdpt.AutoEngine},
	}
	for _, c := range equivCases() {
		for _, e := range engines {
			for _, par := range []int{1, 2, 8} {
				t.Run(fmt.Sprintf("%s/%s/p%d", c.name, e.name, par), func(t *testing.T) {
					mkOpts := func() wdpt.SolveOptions {
						return wdpt.SolveOptions{
							Mode:        wdpt.ModeEnumerate,
							Engine:      e.mk(),
							Parallelism: par,
						}
					}
					colAns, colSnap, colErr := solveOnBackend(t, c.p, c.d, db.BackendColumnar, mkOpts())
					memAns, memSnap, memErr := solveOnBackend(t, c.p, c.d, db.BackendMemory, mkOpts())
					if (colErr == nil) != (memErr == nil) {
						t.Fatalf("error disagreement: col=%v mem=%v", colErr, memErr)
					}
					if colAns != memAns {
						t.Errorf("answers differ between backends:\n--- col\n%s--- mem\n%s", colAns, memAns)
					}
					snapshotDiff(t, colSnap, memSnap)
				})
			}
		}
	}
}

// TestBackendEquivalenceDegraded pins the guard contract across backends:
// under a tripping tuple budget both stores degrade identically (same
// sentinel), and under an answer cap with fallback both return the same
// truncated prefix and mark it degraded.
func TestBackendEquivalenceDegraded(t *testing.T) {
	p := gen.MusicWDPT("x", "y", "z", "zp")
	d := gen.MusicDatabase()

	t.Run("tuple-budget-trip", func(t *testing.T) {
		opts := wdpt.SolveOptions{
			Mode:   wdpt.ModeEnumerate,
			Engine: wdpt.YannakakisEngine(),
			Budget: wdpt.Budget{MaxTuples: 3},
		}
		_, _, colErr := solveOnBackend(t, p, d, db.BackendColumnar, opts)
		_, _, memErr := solveOnBackend(t, p, d, db.BackendMemory, opts)
		if !errors.Is(colErr, wdpt.ErrTupleBudget) || !errors.Is(memErr, wdpt.ErrTupleBudget) {
			t.Fatalf("want ErrTupleBudget on both backends, got col=%v mem=%v", colErr, memErr)
		}
	})

	t.Run("answer-cap-degraded", func(t *testing.T) {
		run := func(b db.Backend) wdpt.SolveResult {
			res, err := p.Solve(context.Background(), d.CloneWithBackend(b), wdpt.SolveOptions{
				Mode:     wdpt.ModeEnumerate,
				Engine:   wdpt.YannakakisEngine(),
				Budget:   wdpt.Budget{MaxAnswers: 1},
				Fallback: true,
			})
			if err != nil {
				t.Fatalf("backend %v: %v", b, err)
			}
			return res
		}
		col, mem := run(db.BackendColumnar), run(db.BackendMemory)
		if !col.Degraded || !mem.Degraded {
			t.Fatalf("want Degraded on both backends: col=%v mem=%v", col.Degraded, mem.Degraded)
		}
		if ca, ma := renderSolutions(col.Answers), renderSolutions(mem.Answers); ca != ma {
			t.Errorf("degraded prefixes differ:\n--- col\n%s--- mem\n%s", ca, ma)
		}
	})
}

// FuzzBackendEquivalence derives a seeded random tree/database pair from
// the fuzz input and checks Solve parity between the backends. The seed
// corpus covers the dictionary-heavy shapes (constants in atoms, skewed
// domains); CI uploads new corpus findings as an artifact.
func FuzzBackendEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(12), false)
	f.Add(int64(7), uint8(2), uint8(30), true)
	f.Add(int64(42), uint8(9), uint8(5), true)
	f.Fuzz(func(t *testing.T, seed int64, domain, tuples uint8, consts bool) {
		tp := gen.TreeParams{MaxDepth: 2, MaxChildren: 2, AtomsPerNode: 2}
		if consts {
			tp.ConstProb = 0.4
		}
		p := gen.RandomWDPT(tp, seed)
		d := gen.RandomDatabase(gen.DBParams{
			DomainSize:   1 + int(domain%10),
			TuplesPerRel: 1 + int(tuples%40),
		}, seed)
		colAns, colSnap, colErr := solveOnBackend(t, p, d, db.BackendColumnar,
			wdpt.SolveOptions{Mode: wdpt.ModeEnumerate, Engine: wdpt.AutoEngine()})
		memAns, memSnap, memErr := solveOnBackend(t, p, d, db.BackendMemory,
			wdpt.SolveOptions{Mode: wdpt.ModeEnumerate, Engine: wdpt.AutoEngine()})
		if (colErr == nil) != (memErr == nil) {
			t.Fatalf("error disagreement: col=%v mem=%v", colErr, memErr)
		}
		if colAns != memAns {
			t.Errorf("answers differ between backends:\n--- col\n%s--- mem\n%s", colAns, memAns)
		}
		snapshotDiff(t, colSnap, memSnap)
	})
}
